/// \file classifier.hpp
/// The paper's contribution: a configurable, label-based, parallel
/// single-field lookup architecture for SDN packet classification
/// (Fig. 2), with controller-driven incremental update (Fig. 4) and the
/// four-phase pipelined lookup of Fig. 3:
///
///   phase 1  split the header into 7 dimension keys
///   phase 2  per-dimension parallel lookup -> label-list pointers
///   phase 3  combine labels into the 68-bit key, hash
///   phase 4  Rule Filter access -> HPMR + action
///
/// One object models both sides of the SDN split: the *controller-side*
/// update path (label tables, structure builders — all pure software,
/// §IV.A) and the *device-side* lookup path, which touches only hw::
/// memories/registers so every cycle and access count in the evaluation
/// is measured, not estimated.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "alg/binary_search_tree.hpp"
#include "alg/label_table.hpp"
#include "alg/multibit_trie.hpp"
#include "alg/port_registers.hpp"
#include "alg/protocol_lut.hpp"
#include "core/config.hpp"
#include "core/rule_filter.hpp"
#include "hwsim/pipeline.hpp"
#include "hwsim/shared_memory.hpp"
#include "hwsim/synthesis.hpp"
#include "hwsim/update_bus.hpp"
#include "net/packet.hpp"
#include "ruleset/rule_set.hpp"

namespace pclass::core {

/// Outcome and measured cost of classifying one header.
struct ClassifyResult {
  /// The matched rule (HPMR under CrossProduct; under FirstLabel, the
  /// rule owning the first-label combination, when present).
  std::optional<RuleEntry> match;
  u64 cycles = 0;            ///< end-to-end latency of this lookup
  u64 memory_accesses = 0;   ///< total block-memory reads
  u64 crossproduct_probes = 0;  ///< hash probes issued in phase 3
};

/// Per-block memory occupancy snapshot.
struct MemoryBlockReport {
  std::string name;
  u64 capacity_bits = 0;
  u64 used_bits = 0;
};

/// Device memory map (Table V/VI source data).
struct MemoryReport {
  std::vector<MemoryBlockReport> blocks;
  u64 total_capacity_bits = 0;
  u64 total_used_bits = 0;
  u64 register_bits = 0;
};

/// The configurable classification device plus its controller shadow.
class ConfigurableClassifier {
 public:
  explicit ConfigurableClassifier(ClassifierConfig cfg = {});
  ~ConfigurableClassifier();

  ConfigurableClassifier(const ConfigurableClassifier&) = delete;
  ConfigurableClassifier& operator=(const ConfigurableClassifier&) = delete;

  // ---- controller API (update path) ----

  /// Install one rule (Fig. 4 flow). Returns the measured update cost.
  /// \throws ConfigError on duplicate id or duplicate match part;
  ///         CapacityError when any hardware structure is full.
  hw::UpdateStats add_rule(const ruleset::Rule& r);

  /// Bulk-install a rule set (single BST rebuild per dimension when the
  /// BST configuration is active).
  hw::UpdateStats add_rules(const ruleset::RuleSet& rules);

  /// Remove an installed rule.
  hw::UpdateStats remove_rule(RuleId id);

  /// OpenFlow MODIFY: replace the action (and optionally priority) of an
  /// installed rule without touching the lookup structures — a single
  /// in-place Rule Filter rewrite (3 bus cycles, like an insert).
  /// Changing the priority additionally refreshes the IP label lists it
  /// orders.
  hw::UpdateStats modify_rule(RuleId id, ruleset::Action action);

  /// Drive the IPalg_s select line (§III.A): clears the deactivating
  /// engines, re-binds the shared blocks (Fig. 5 flush) and rebuilds the
  /// newly selected engines from the label tables. Returns the cost.
  hw::UpdateStats set_ip_algorithm(IpAlgorithm alg);

  /// Phase-3 policy (software decision; free).
  void set_combine_mode(CombineMode mode) { cfg_.combine_mode = mode; }

  // ---- data-plane API (lookup path) ----

  /// Classify a parsed 5-tuple.
  [[nodiscard]] ClassifyResult classify(const net::FiveTuple& h) const;

  /// Parse + classify raw packet bytes; nullopt result for non-IPv4.
  [[nodiscard]] ClassifyResult classify_packet(
      std::span<const u8> bytes) const;

  /// Batched lookup: classify `in[i]` into `out[i]` for the whole span
  /// in one tight loop. This is the entry point the dataplane engine
  /// drives per worker batch; `out.size()` must be >= `in.size()`.
  /// Thread-safe against other concurrent const lookups (the update
  /// path is not — the dataplane publishes immutable snapshots instead).
  void classify_batch(std::span<const net::FiveTuple> in,
                      std::span<ClassifyResult> out) const;

  // ---- introspection ----

  [[nodiscard]] const ClassifierConfig& config() const { return cfg_; }
  [[nodiscard]] IpAlgorithm ip_algorithm() const { return cfg_.ip_algorithm; }
  [[nodiscard]] CombineMode combine_mode() const { return cfg_.combine_mode; }
  [[nodiscard]] usize rule_count() const { return installed_.size(); }
  [[nodiscard]] std::optional<ruleset::Rule> installed_rule(RuleId id) const;

  /// Snapshot extraction: every installed rule (id order), so a
  /// dataplane publisher can seed a fresh replica from a live device.
  [[nodiscard]] std::vector<ruleset::Rule> installed_rules() const;

  /// Cumulative update-bus statistics since construction.
  [[nodiscard]] const hw::UpdateStats& update_stats() const {
    return bus_.stats();
  }

  /// Fig. 3 pipeline model for the current configuration.
  [[nodiscard]] hw::Pipeline lookup_pipeline() const;

  /// Memory map with capacity and live occupancy per block.
  [[nodiscard]] MemoryReport memory_report() const;

  /// Table V-shaped resource estimate for the current device.
  [[nodiscard]] hw::SynthesisReport synthesis_report() const;

  /// Unique labels currently live in dimension \p d.
  [[nodiscard]] usize label_count(Dimension d) const;

  /// The label-list store of IP dimension \p ip_dim_index (0..3), for
  /// dedup statistics (Ablation B).
  [[nodiscard]] const alg::LabelListStore& label_store(
      usize ip_dim_index) const {
    return *lists_.at(ip_dim_index);
  }

 private:
  struct InstalledRule {
    ruleset::Rule rule;
    Key68 key;
  };

  // The four IP dimensions in engine-array order.
  static constexpr std::array<Dimension, 4> kIpDims = {
      Dimension::kSrcIpHi, Dimension::kSrcIpLo, Dimension::kDstIpHi,
      Dimension::kDstIpLo};

  [[nodiscard]] static ruleset::SegmentPrefix ip_segment(
      const ruleset::Rule& r, usize ip_dim_index);

  /// Acquire all 7 labels for a rule, inserting/refreshing engine state
  /// as needed. When \p bst_bulk is non-null (bulk load under BST), new
  /// IP prefixes are staged there instead of rebuilding per rule.
  std::array<Label, kNumDimensions> acquire_labels(
      const ruleset::Rule& r, hw::CommandLog& log,
      std::array<std::vector<std::pair<ruleset::SegmentPrefix, Label>>, 4>*
          bst_bulk);

  void release_labels(const ruleset::Rule& r, hw::CommandLog& log);

  /// Charge a command batch on the update bus; returns the batch stats.
  hw::UpdateStats apply(hw::CommandLog& log);

  /// Phase-2 lookup of one IP dimension through the active engine.
  [[nodiscard]] alg::ListRef ip_lookup(usize ip_dim_index, u16 key,
                                       hw::CycleRecorder* rec) const;

  void rebuild_active_ip_engines(hw::CommandLog& log);

  /// Insert into the rule filter, automatically re-seeding the hash and
  /// re-uploading the table when a probe-bound CapacityError hits (the
  /// controller-side recovery §IV.A implies).
  void filter_insert_with_reseed(const Key68& key, const RuleEntry& entry,
                                 hw::CommandLog& log);

  ClassifierConfig cfg_;
  u32 reseed_attempts_ = 0;

  // Controller-side label bookkeeping.
  std::array<alg::LabelTable<ruleset::SegmentPrefix>, 4> ip_tables_;
  alg::LabelTable<ruleset::PortRange> sport_table_;
  alg::LabelTable<ruleset::PortRange> dport_table_;
  alg::LabelTable<ruleset::ProtoMatch> proto_table_;
  std::array<std::vector<Priority>, kNumDimensions> label_prio_;

  // Device-side blocks.
  std::array<std::unique_ptr<alg::LabelListStore>, 4> lists_;
  std::array<std::unique_ptr<hw::SharedMemory>, 4> shared_;
  std::array<std::unique_ptr<alg::MultiBitTrie>, 4> mbt_;
  std::array<std::unique_ptr<alg::BinarySearchTree>, 4> bst_;
  std::unique_ptr<alg::PortRegisterFile> sport_regs_;
  std::unique_ptr<alg::PortRegisterFile> dport_regs_;
  std::unique_ptr<alg::ProtocolLut> proto_lut_;
  std::unique_ptr<RuleFilter> rule_filter_;

  hw::UpdateBus bus_;
  std::map<RuleId, InstalledRule> installed_;
  std::unordered_map<u64, RuleId> match_index_;  // fingerprint -> rule
};

}  // namespace pclass::core
