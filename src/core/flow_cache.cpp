#include "core/flow_cache.hpp"

#include "common/error.hpp"

namespace pclass::core {

namespace {
constexpr unsigned kLineBits = 1 + 1 + 64 + 16 + 16 + 16;
}

FlowCache::FlowCache(std::string name, u32 depth, u64 seed)
    : mem_(std::move(name), depth, kLineBits), seed_(seed) {}

u64 FlowCache::fingerprint(const net::FiveTuple& t) const {
  const u64 a = (u64{t.src_ip} << 32) | t.dst_ip;
  const u64 b = (u64{t.src_port} << 24) | (u64{t.dst_port} << 8) |
                t.protocol;
  return mix64(a ^ mix64(b ^ seed_));
}

u32 FlowCache::index(const net::FiveTuple& t) const {
  return static_cast<u32>(
      mul_high_u64(mix64(fingerprint(t) ^ (seed_ >> 3)), mem_.depth()));
}

std::optional<std::optional<RuleEntry>> FlowCache::lookup(
    const net::FiveTuple& t, hw::CycleRecorder* rec) {
  if (rec != nullptr) {
    rec->charge(1, 0);  // hash unit
  }
  hw::WordUnpacker u(mem_.read(index(t), rec));
  const bool valid = u.pull(1) != 0;
  const bool cached_hit = u.pull(1) != 0;
  const u64 fp = u.pull(64);
  if (!valid || fp != fingerprint(t)) {
    ++stats_.misses;
    return std::nullopt;  // cache miss: caller runs the full pipeline
  }
  ++stats_.hits;
  if (!cached_hit) {
    // Cached negative verdict: engaged outer optional, empty inner one.
    return std::optional<std::optional<RuleEntry>>{
        std::optional<RuleEntry>{}};
  }
  RuleEntry e;
  e.rule = RuleId{static_cast<u32>(u.pull(16))};
  e.priority = static_cast<Priority>(u.pull(16));
  e.action = static_cast<u32>(u.pull(16));
  return std::optional<std::optional<RuleEntry>>{e};
}

void FlowCache::fill(const net::FiveTuple& t,
                     const std::optional<RuleEntry>& verdict) {
  hw::WordPacker p;
  p.push(1, 1);
  p.push(verdict.has_value() ? 1 : 0, 1);
  p.push(fingerprint(t), 64);
  p.push(verdict ? (verdict->rule.value & 0xFFFFu) : 0, 16);
  p.push(verdict ? (verdict->priority & 0xFFFFu) : 0, 16);
  p.push(verdict ? (verdict->action & 0xFFFFu) : 0, 16);
  mem_.write(index(t), p.word());
  ++stats_.fills;
}

void FlowCache::invalidate_all() {
  mem_.clear();
  ++stats_.invalidations;
}

}  // namespace pclass::core
