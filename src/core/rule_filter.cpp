#include "core/rule_filter.hpp"

#include <bit>

#include "common/error.hpp"

namespace pclass::core {

u32 ProbeMemo::normalized_slots(u32 slots) {
  return std::bit_ceil(std::max<u32>(slots, 16));
}

ProbeMemo::ProbeMemo(u32 slots, u32 ways) {
  if (!valid_ways(ways)) {
    throw ConfigError("ProbeMemo: ways must be 1 (direct-mapped) or 2 "
                      "(set-associative)");
  }
  const u32 n = normalized_slots(slots);
  entries_.resize(n);
  ways_ = ways;
  lru_.assign(n / ways, 0);
  set_mask_ = n / ways - 1;
}

RuleFilter::RuleFilter(const std::string& name, u32 depth, u32 max_probes,
                       u64 hash_seed)
    : mem_(name, depth, kWordBits),
      hasher_(depth, hash_seed),
      max_probes_(max_probes) {
  if (max_probes == 0 || max_probes > depth) {
    throw ConfigError("RuleFilter: max_probes must be in [1, depth]");
  }
}

RuleFilter::Slot RuleFilter::decode(u32 addr, hw::CycleRecorder* rec) const {
  hw::WordUnpacker u(mem_.read(addr, rec));
  Slot s;
  s.valid = u.pull(1) != 0;
  s.tombstone = u.pull(1) != 0;
  const u64 key_lo = u.pull(64);
  const u64 key_hi = u.pull(4);
  s.key = Key68{static_cast<u8>(key_hi), key_lo};
  s.entry.rule = RuleId{static_cast<u32>(u.pull(16))};
  s.entry.priority = static_cast<Priority>(u.pull(16));
  s.entry.action = static_cast<u32>(u.pull(16));
  return s;
}

void RuleFilter::encode(u32 addr, const Slot& s, hw::CommandLog& log) {
  hw::WordPacker p;
  p.push(s.valid ? 1 : 0, 1);
  p.push(s.tombstone ? 1 : 0, 1);
  p.push(s.key.lo64(), 64);
  p.push(s.key.hi4(), 4);
  p.push(s.entry.rule.value & 0xFFFFu, 16);
  p.push(s.entry.priority & 0xFFFFu, 16);
  p.push(s.entry.action & 0xFFFFu, 16);
  const hw::Word full = p.word();
  // Pin-limited upload (§V.A): the 118-bit entry arrives in two bus
  // beats; the first beat stages the word with the valid bit clear so a
  // concurrent lookup never sees a half-written entry.
  hw::Word staged = full;
  staged.lo &= ~u64{1};
  log.memory_write(mem_, addr, staged);
  log.memory_write(mem_, addr, full);
}

void RuleFilter::insert(const Key68& key, const RuleEntry& entry,
                        hw::CommandLog& log) {
  if (entry.rule.value > 0xFFFF || entry.priority > 0xFFFF ||
      entry.action > 0xFFFF) {
    throw ConfigError("RuleFilter: rule id/priority/action exceed the "
                      "16-bit entry fields");
  }
  if (live_ >= mem_.depth()) {
    throw CapacityError("RuleFilter '" + mem_.name() + "': table full");
  }
  const u32 home = hasher_(key);
  std::optional<u32> reusable;
  for (u32 probe = 0; probe < max_probes_; ++probe) {
    const u32 addr = (home + probe) % mem_.depth();
    const Slot s = decode(addr, nullptr);
    if (s.valid && s.key == key) {
      throw InternalError("RuleFilter: duplicate key insert");
    }
    if (!s.valid) {
      if (s.tombstone) {
        if (!reusable) reusable = addr;
        continue;  // key may still appear later in the chain
      }
      const u32 target = reusable.value_or(addr);
      if (reusable && decode(target, nullptr).tombstone) {
        --tombstones_;
      }
      encode(target, Slot{true, false, key, entry}, log);
      ++live_;
      return;
    }
  }
  if (reusable) {
    --tombstones_;
    encode(*reusable, Slot{true, false, key, entry}, log);
    ++live_;
    return;
  }
  throw CapacityError("RuleFilter '" + mem_.name() +
                      "': probe bound exceeded (" +
                      std::to_string(max_probes_) +
                      ") — re-seed the hash or grow the table");
}

void RuleFilter::remove(const Key68& key, hw::CommandLog& log) {
  const u32 home = hasher_(key);
  for (u32 probe = 0; probe < max_probes_; ++probe) {
    const u32 addr = (home + probe) % mem_.depth();
    const Slot s = decode(addr, nullptr);
    if (s.valid && s.key == key) {
      encode(addr, Slot{false, true, {}, {}}, log);
      --live_;
      ++tombstones_;
      return;
    }
    if (!s.valid && !s.tombstone) {
      break;
    }
  }
  throw InternalError("RuleFilter: remove of unknown key");
}

void RuleFilter::modify(const Key68& key, const RuleEntry& entry,
                        hw::CommandLog& log) {
  if (entry.rule.value > 0xFFFF || entry.priority > 0xFFFF ||
      entry.action > 0xFFFF) {
    throw ConfigError("RuleFilter: rule id/priority/action exceed the "
                      "16-bit entry fields");
  }
  const u32 home = hasher_(key);
  for (u32 probe = 0; probe < max_probes_; ++probe) {
    const u32 addr = (home + probe) % mem_.depth();
    const Slot s = decode(addr, nullptr);
    if (s.valid && s.key == key) {
      encode(addr, Slot{true, false, key, entry}, log);
      return;
    }
    if (!s.valid && !s.tombstone) {
      break;
    }
  }
  throw InternalError("RuleFilter: modify of unknown key");
}

void RuleFilter::reseed(u64 new_seed, hw::CommandLog& log) {
  // Collect live entries from the device words (the controller's shadow
  // is the memory itself in this model).
  std::vector<std::pair<Key68, RuleEntry>> live;
  live.reserve(live_);
  for (u32 addr = 0; addr < mem_.depth(); ++addr) {
    const Slot s = decode(addr, nullptr);
    if (s.valid) {
      live.emplace_back(s.key, s.entry);
    }
  }
  const Key68Hasher old_hasher = hasher_;
  auto upload = [&](const Key68Hasher& h) {
    clear(log);
    hasher_ = h;
    for (const auto& [key, entry] : live) {
      log.hash_compute(mem_.name() + ".hash");
      insert(key, entry, log);
    }
  };
  try {
    upload(Key68Hasher(mem_.depth(), new_seed));
  } catch (const CapacityError&) {
    // All-or-nothing: restore under the old seed. Linear-probing
    // occupancy is insertion-order independent, so the restore cannot
    // exceed the probe bound the old layout satisfied.
    upload(old_hasher);
    throw;
  }
}

void RuleFilter::clear(hw::CommandLog& log) {
  for (u32 addr = 0; addr < mem_.depth(); ++addr) {
    const Slot s = decode(addr, nullptr);
    if (s.valid || s.tombstone) {
      encode(addr, Slot{}, log);
    }
  }
  live_ = 0;
  tombstones_ = 0;
}

std::optional<RuleEntry> RuleFilter::lookup(const Key68& key,
                                            hw::CycleRecorder* rec) const {
  if (rec != nullptr) {
    rec->charge(1, 0);  // hardware hash unit, one cycle
  }
  const u32 home = hasher_(key);
  for (u32 probe = 0; probe < max_probes_; ++probe) {
    const u32 addr = (home + probe) % mem_.depth();
    const Slot s = decode(addr, rec);
    if (s.valid && s.key == key) {
      return s.entry;
    }
    if (!s.valid && !s.tombstone) {
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<RuleEntry> RuleFilter::lookup_memo(const Key68& key,
                                                 hw::CycleRecorder* rec,
                                                 ProbeMemo& memo,
                                                 u64& memo_hits) const {
  // Cheap multiply-shift set hash: the memo sits on every probe of the
  // batch path, so the miss cost must stay at `ways` compares + one
  // store.
  const u64 x = (key.lo64() ^ (u64{key.hi4()} << 60)) *
                0x9E3779B97F4A7C15ULL;
  const u32 set = static_cast<u32>(x >> 40) & memo.set_mask_;
  ProbeMemo::Entry* const base = &memo.entries_[set * memo.ways_];
  for (u32 w = 0; w < memo.ways_; ++w) {
    ProbeMemo::Entry& e = base[w];
    if (e.gen == memo.gen_ && e.key == key) {
      // Combination-cache hit: one cycle (the ways tag-compare in
      // parallel), plus the memory reads of the probe it replaces
      // (access calibration — see the ProbeMemo contract).
      if (rec != nullptr) {
        rec->charge(1, e.probe_accesses);
      }
      ++memo_hits;
      if (memo.ways_ == 2) {
        memo.lru_[set] = static_cast<u8>(w ^ 1);  // the other way is LRU
      }
      return e.matched ? std::optional<RuleEntry>(e.entry) : std::nullopt;
    }
  }
  hw::CycleRecorder probe;
  const std::optional<RuleEntry> verdict = lookup(key, &probe);
  if (rec != nullptr) {
    rec->charge(probe.cycles(), probe.memory_accesses());
  }
  // Victim: an invalid way if the set has one (covers every entry right
  // after an O(1) invalidation), else the set's LRU way — replacing a
  // live entry of another key is the conflict eviction the 2-way
  // geometry exists to reduce, so count it.
  u32 victim = memo.ways_ == 2 ? memo.lru_[set] : 0;
  for (u32 w = 0; w < memo.ways_; ++w) {
    if (base[w].gen != memo.gen_) {
      victim = w;
      break;
    }
  }
  ProbeMemo::Entry& e = base[victim];
  if (e.gen == memo.gen_ && !(e.key == key)) {
    ++memo.conflict_evictions_;
  }
  e.key = key;
  e.gen = memo.gen_;
  e.matched = verdict.has_value();
  e.entry = verdict.value_or(RuleEntry{});
  e.probe_accesses = static_cast<u32>(probe.memory_accesses());
  if (memo.ways_ == 2) {
    memo.lru_[set] = static_cast<u8>(victim ^ 1);
  }
  return verdict;
}

}  // namespace pclass::core
