/// \file config.hpp
/// Configuration of the configurable classifier: which IP algorithm the
/// controller selects (the IPalg_s signal of Fig. 2), how phase 3
/// combines labels, and the memory geometry of every block.
#pragma once

#include "alg/binary_search_tree.hpp"
#include "alg/multibit_trie.hpp"
#include "alg/port_registers.hpp"
#include "alg/range_vector_hash.hpp"
#include "common/types.hpp"

namespace pclass::core {

/// The IP lookup algorithms the controller can select (§IV.B: "a
/// configurable platform choosing between fast IP lookup algorithm (MBT)
/// and efficient-memory-space algorithm (BST)"; kRvh extends the select
/// with the repo's second backend family — a range-vector hash engine
/// whose update path is incremental rather than rebuild/leaf-push).
enum class IpAlgorithm : u8 {
  kMbt,  ///< multi-bit trie — fast, pipelined (IPalg_s = 0)
  kBst,  ///< binary search tree — compact (IPalg_s = 1)
  kRvh,  ///< range-vector hash — fast online updates (IPalg_s = 2)
};

[[nodiscard]] constexpr const char* to_string(IpAlgorithm a) {
  switch (a) {
    case IpAlgorithm::kMbt: return "MBT";
    case IpAlgorithm::kBst: return "BST";
    case IpAlgorithm::kRvh: return "RVH";
  }
  return "?";
}

/// Phase-3 label combination policy.
enum class CombineMode : u8 {
  /// The paper's scheme (§III.B): concatenate the *first* label of each
  /// dimension list and probe once. Fast and fixed-latency, but only
  /// heuristically correct on overlapping rule sets (see DESIGN.md §1.1).
  kFirstLabel,
  /// Probe every combination of the (short) per-dimension label lists
  /// and return the minimum-priority hit. Provably exact; variable
  /// latency. Used as the correctness reference and for the ablation.
  kCrossProduct,
};

[[nodiscard]] constexpr const char* to_string(CombineMode m) {
  return m == CombineMode::kFirstLabel ? "first-label" : "cross-product";
}

/// How classify_batch() drives phase 2 (a software decision; free).
enum class BatchMode : u8 {
  /// Packet-at-a-time: classify() per header (the pre-batching path,
  /// kept as the A/B reference).
  kScalar,
  /// True batch engine: per-dimension keys are gathered and sorted for
  /// the whole batch, each engine walks once per distinct-key run
  /// (shared trie nodes touched once per batch), and the cross-product
  /// combiner memoizes repeated label combinations per batch. Modeled
  /// per-packet costs are preserved exactly (memory accesses always;
  /// cycles too unless the probe memo is on, which can only lower them).
  kPhase2,
};

[[nodiscard]] constexpr const char* to_string(BatchMode m) {
  return m == BatchMode::kScalar ? "scalar" : "phase2";
}

/// How classify_batch() picks its per-batch execution path under
/// BatchMode::kPhase2. All paths produce identical verdicts and
/// per-packet memory accesses (cycles may only drop when the probe memo
/// engages), so the policy is purely a host-performance decision.
enum class PathPolicy : u8 {
  /// The per-scratch EWMA controller (core/path_controller.hpp) picks
  /// scalar-loop vs batch engine and memo-on vs memo-off online, from
  /// measured host ns/packet. The default.
  kAdaptive,
  /// Always the batch engine; the probe memo follows batch_probe_memo.
  /// The deterministic choice tests and ablations force.
  kForcePhase2,
  /// Always the packet-at-a-time loop (the phase-2 cost model without
  /// its scaffolding).
  kForceScalarLoop,
};

[[nodiscard]] constexpr const char* to_string(PathPolicy p) {
  switch (p) {
    case PathPolicy::kAdaptive: return "adaptive";
    case PathPolicy::kForcePhase2: return "phase2";
    case PathPolicy::kForceScalarLoop: return "scalar-loop";
  }
  return "?";
}

/// Full device configuration.
struct ClassifierConfig {
  IpAlgorithm ip_algorithm = IpAlgorithm::kMbt;
  CombineMode combine_mode = CombineMode::kFirstLabel;
  /// classify_batch() strategy (classify() is always scalar).
  BatchMode batch_mode = BatchMode::kPhase2;
  /// Combination-probe memo in the combiner (phase-2 only): when true
  /// the memo is *eligible*; under PathPolicy::kAdaptive the controller
  /// still decides per batch whether engaging it pays.
  bool batch_probe_memo = true;
  /// Slots of that memo (rounded up to a power of two).
  u32 batch_memo_slots = 512;
  /// Memo associativity: 2 (default) = two tagged ways per set with
  /// per-set LRU, so hot cross-batch combinations colliding on a set
  /// coexist; 1 = the direct-mapped layout, kept as the --memo-ways 1
  /// A/B reference. Same total slot count either way.
  u32 batch_memo_ways = 2;  // == ProbeMemo::kDefaultWays
  /// Persistent memo lifetime (the default): entries survive batch
  /// boundaries and are invalidated only when the device they were
  /// cached against changes (snapshot swap / in-place update). false
  /// restores the per-batch generation reset — kept as the A/B
  /// reference for bench_batch_ablation.
  bool batch_memo_persistent = true;
  /// Per-batch execution-path policy for the phase-2 engine.
  PathPolicy batch_path_policy = PathPolicy::kAdaptive;

  /// Geometry of each of the four IP-segment MBT engines.
  alg::MbtConfig mbt{};
  /// Geometry of each of the four IP-segment BST engines.
  alg::BstConfig bst{};
  /// Geometry of each of the four IP-segment RVH engines.
  alg::RvhConfig rvh{};
  /// Port register banks (source and destination).
  alg::PortRegistersConfig ports{};
  /// Label-list store depth per IP dimension (words).
  u32 label_store_depth = 8192;
  /// Rule Filter bucket count.
  u32 rule_filter_depth = 8192;
  /// Linear-probe bound before the controller must intervene.
  u32 rule_filter_max_probes = 64;
  /// Hash seed (the controller can re-seed on pathological clustering).
  u64 hash_seed = 0x9E3779B97F4A7C15ULL;
  /// Safety bound on CrossProduct probes per packet.
  u32 max_crossproduct_probes = 1u << 20;
  /// Share one physical block per IP dimension between the MBT level-2
  /// and the BST nodes (Fig. 5). When false each engine owns its memory.
  bool share_ip_memory = true;
  /// Model clock (paper's Table V synthesis result).
  double fmax_mhz = 133.51;

  /// Preset sized for filter sets up to \p max_rules rules (the paper's
  /// 1K/5K/10K working points).
  [[nodiscard]] static ClassifierConfig for_scale(usize max_rules) {
    ClassifierConfig c;
    if (max_rules <= 1200) {
      c.mbt.level_capacity = {1, 64, 192};
      c.bst.max_nodes = 3072;
      c.rvh.table_depth = 4096;
      c.label_store_depth = 4096;
      c.rule_filter_depth = 4096;
    } else if (max_rules <= 5200) {
      c.mbt.level_capacity = {1, 128, 512};
      c.bst.max_nodes = 8192;
      c.rvh.table_depth = 8192;
      c.label_store_depth = 8192;
      c.rule_filter_depth = 12288;
    } else {
      c.mbt.level_capacity = {1, 224, 1024};
      c.bst.max_nodes = 16384;
      c.rvh.table_depth = 16384;
      c.label_store_depth = 16384;
      c.rule_filter_depth = 24576;
    }
    return c;
  }
};

}  // namespace pclass::core
