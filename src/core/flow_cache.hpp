/// \file flow_cache.hpp
/// Exact-match flow cache in front of the classifier. The paper's flow
/// premise (§I: "It is only necessary that the first packet header of a
/// flow matches the matching rule") means steady-state traffic should
/// hit an exact 5-tuple table in one memory access; only flow-opening
/// packets pay the full 4-phase lookup. This block models that fast
/// path: a direct-mapped (1-way) hash table over the 104-bit 5-tuple,
/// filled by the data plane on classification results and invalidated by
/// the controller on any rule change (a conservative, correct policy —
/// per-rule invalidation would need reverse maps the paper does not
/// describe).
#pragma once

#include <optional>
#include <string>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "core/rule_filter.hpp"
#include "hwsim/memory.hpp"
#include "net/five_tuple.hpp"

namespace pclass::core {

/// Hit/miss counters of the cache.
struct FlowCacheStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 fills = 0;
  u64 invalidations = 0;  ///< full flushes (rule-table generation bumps)

  [[nodiscard]] double hit_rate() const {
    const u64 total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
};

/// Direct-mapped exact-match flow table.
class FlowCache {
 public:
  /// \param depth  number of cache lines (power of two not required).
  FlowCache(std::string name, u32 depth, u64 seed = 0xF10C ^ 0xCAFE);

  /// Look up a 5-tuple: one hash cycle + one memory read. A valid line
  /// with a matching stored tuple returns the cached verdict (which may
  /// be a cached *miss*: rule-less flows are cached too, as drop).
  [[nodiscard]] std::optional<std::optional<RuleEntry>> lookup(
      const net::FiveTuple& t, hw::CycleRecorder* rec);

  /// Install the classification verdict for \p t (data-plane fill; one
  /// write, not metered on the update bus — it is not a controller op).
  void fill(const net::FiveTuple& t, const std::optional<RuleEntry>& verdict);

  /// Controller-side invalidation: any rule add/modify/delete can change
  /// any cached verdict, so the whole cache is flushed (single-cycle
  /// valid-bit clear in hardware).
  void invalidate_all();

  [[nodiscard]] const FlowCacheStats& stats() const { return stats_; }
  [[nodiscard]] const hw::Memory& memory() const { return mem_; }

 private:
  /// Line layout: valid(1) cached_hit(1) tuple(104) rule(16) prio(16)
  /// action(16) = 154 bits -> two 128-bit words would be needed; we
  /// store the 104-bit tuple as a 64-bit fingerprint + the 32-bit hash
  /// tag instead, which is what a real implementation does:
  /// valid(1) cached_hit(1) fp(64) rule(16) prio(16) action(16) = 114.
  [[nodiscard]] u64 fingerprint(const net::FiveTuple& t) const;
  [[nodiscard]] u32 index(const net::FiveTuple& t) const;

  hw::Memory mem_;
  u64 seed_;
  FlowCacheStats stats_;
};

}  // namespace pclass::core
