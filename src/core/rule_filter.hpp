/// \file rule_filter.hpp
/// The Rule Filter memory block (§III.D, §IV.A): rules are stored at the
/// address produced by the hardware hash of their 68-bit merged label key
/// ("The final address to store each rule in the Rule Filter block is
/// performed using a hash function implemented in hardware").
///
/// Collisions are resolved by linear probing; the stored key is compared
/// on lookup (the hardware's match confirm), so a probe either returns
/// the unique rule owning that label combination or reports a miss.
/// Deletions leave tombstones to keep probe chains intact; the
/// controller can rebuild the table when tombstones accumulate.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/key68.hpp"
#include "common/types.hpp"
#include "hwsim/memory.hpp"
#include "hwsim/update_bus.hpp"

namespace pclass::core {

/// What the filter returns on a hit.
struct RuleEntry {
  RuleId rule;
  Priority priority = kNoPriority;
  u32 action = 0;

  friend constexpr auto operator<=>(const RuleEntry&,
                                    const RuleEntry&) = default;
};

/// Combination-probe memo for the phase-3/4 combiner: a small
/// set-associative map from a 68-bit label combination to its cached
/// verdict. Models a tiny combination cache in front of the Rule
/// Filter: repeated label combinations (fw-like traffic) resolve in one
/// cycle instead of re-walking hash + probe chain.
///
/// Geometry: \p ways = 2 (the default) pairs each set index with two
/// tagged ways and a one-bit LRU, so two hot cross-batch combinations
/// that collide on the same set coexist instead of evicting each other
/// on every alternation — the conflict-miss pathology of a direct map
/// (cf. RVH: hash-structure conflict behavior dominates online
/// classification tail latency). \p ways = 1 keeps the direct-mapped
/// layout as the A/B reference (--memo-ways 1). A replacement that
/// overwrites a *live* entry of a different key is counted in
/// conflict_evictions() — the observable the A/B compares.
///
/// Lifetime: the memo is *persistent* — entries are tagged with the
/// device state they were cached against (a (device id, update epoch)
/// binding, see bind()) and survive batch boundaries, so flow locality
/// spanning batches keeps compounding hits. They are invalidated, in
/// O(1), exactly when that binding changes: the scratch is pointed at a
/// different classifier (a published RuleProgram snapshot swap rotates
/// the replica the worker classifies against) or the same classifier
/// absorbed an update (every update-path mutation bumps the device
/// epoch). A stale entry can therefore never serve across a version
/// boundary. ClassifierConfig::batch_memo_persistent = false restores
/// the PR-3 per-batch reset as an A/B reference.
///
/// Cycle-charging contract (preserved by RuleFilter::lookup_memo): a
/// memo hit returns the identical verdict and charges the identical
/// modeled *memory accesses* as the probe it replaces — so the paper's
/// access-count tables stay calibrated and per-packet memory_accesses
/// are invariant under the memo — but only one cycle of latency (the
/// ways of a set are tag-compared in parallel, like a set-associative
/// cache, so associativity does not change the hit cost). Per-packet
/// cycles are therefore <= the scalar path's, never different in
/// accesses.
class ProbeMemo {
 public:
  static constexpr u32 kDefaultSlots = 512;
  static constexpr u32 kDefaultWays = 2;

  /// \p slots is the total entry count, rounded up to a power of two
  /// (>= 16); \p ways must be 1 (direct-mapped) or 2 (set-associative
  /// with per-set LRU), and divides the rounded slot count into sets.
  /// An overflowing cluster simply stops memoizing (correctness is
  /// unaffected; the probe runs for real).
  /// \throws ConfigError for any other \p ways.
  explicit ProbeMemo(u32 slots = kDefaultSlots, u32 ways = kDefaultWays);

  /// The entry count a memo built with \p slots actually has (the
  /// constructor's rounding rule). Callers that cache a ProbeMemo and
  /// rebuild on geometry change compare against this — one shared
  /// definition, so the check can never desync from the constructor.
  [[nodiscard]] static u32 normalized_slots(u32 slots);

  /// True iff \p ways is a geometry the memo supports (1 or 2).
  [[nodiscard]] static constexpr bool valid_ways(u32 ways) {
    return ways == 1 || ways == 2;
  }

  /// Bind the memo to a device state before a batch: \p device_id is a
  /// process-unique classifier id (never reused, unlike an address) and
  /// \p epoch that device's update epoch. Returns true when the binding
  /// changed — every cached combination was just invalidated (O(1)
  /// generation bump); false when the memo carried over and hits may
  /// compound across batches.
  bool bind(u64 device_id, u64 epoch) {
    if (device_id == bound_device_ && epoch == bound_epoch_) return false;
    bound_device_ = device_id;
    bound_epoch_ = epoch;
    ++gen_;
    return true;
  }

  /// Unconditionally invalidate every cached combination in O(1) (the
  /// per-batch A/B mode; also clears the binding so the next bind()
  /// reports an invalidation).
  void invalidate() {
    bound_device_ = 0;
    ++gen_;
  }

  [[nodiscard]] u32 slots() const { return static_cast<u32>(entries_.size()); }
  [[nodiscard]] u32 ways() const { return ways_; }

  /// Replacements that overwrote a *live* entry holding a different key
  /// (a conflict miss made visible). Cumulative over the memo's
  /// lifetime; invalidations do not reset it. Surfaced per dataplane
  /// worker as probe_memo_conflict_evictions.
  [[nodiscard]] u64 conflict_evictions() const { return conflict_evictions_; }

 private:
  friend class RuleFilter;

  struct Entry {
    Key68 key{};
    u64 gen = 0;  ///< live iff == ProbeMemo::gen_
    bool matched = false;
    RuleEntry entry{};
    u32 probe_accesses = 0;  ///< reads the memoized probe performed
  };

  // Small associativity on purpose: a memo miss must stay at ways tag
  // compares and one overwrite, because low-reuse workloads (acl-like
  // cross-products, where nearly every combination is fresh) pay it on
  // every probe. A colliding hot combination merely re-probes —
  // correctness never depends on the memo's hit rate. Entries of set s
  // live at entries_[s * ways_ .. s * ways_ + ways_ - 1]; lru_[s] names
  // the way to replace next (always 0 when direct-mapped). Invalidation
  // stays O(1): the generation bump makes every entry invalid, and
  // replacement prefers invalid ways, so stale LRU bits are harmless.
  std::vector<Entry> entries_;
  std::vector<u8> lru_;
  u64 gen_ = 1;
  u32 set_mask_ = 0;
  u32 ways_ = kDefaultWays;
  u64 conflict_evictions_ = 0;
  u64 bound_device_ = 0;  ///< 0 = unbound (classifier ids start at 1)
  u64 bound_epoch_ = 0;
};

/// Hashed rule memory.
class RuleFilter {
 public:
  /// \param depth       bucket count.
  /// \param max_probes  linear-probe bound; insert throws CapacityError
  ///                    beyond it (the controller re-seeds or resizes).
  RuleFilter(const std::string& name, u32 depth, u32 max_probes,
             u64 hash_seed);

  // ---- controller-side update path ----

  /// Store \p entry under \p key. A rule upload is the paper's §V.A cost:
  /// the caller logs one hash compute, and the entry occupies one word
  /// (written in two pin-limited halves — two commands — matching "one
  /// cycle to store source information and one clock cycle to store
  /// destination information").
  /// \throws CapacityError when the probe bound or load limit is hit.
  /// \throws InternalError on duplicate key (rule dedup is upstream).
  void insert(const Key68& key, const RuleEntry& entry, hw::CommandLog& log);

  /// Remove the entry stored under \p key (tombstoned).
  void remove(const Key68& key, hw::CommandLog& log);

  /// Rewrite the entry stored under \p key in place (OpenFlow MODIFY:
  /// same match, new action/priority). Costs one hash (logged by the
  /// caller) plus the two-beat word rewrite — as cheap as an insert.
  /// \throws InternalError if the key is not present.
  void modify(const Key68& key, const RuleEntry& entry, hw::CommandLog& log);

  /// Rebuild the table under a fresh hash seed (the controller's answer
  /// to a probe-bound CapacityError): every live entry is re-hashed and
  /// re-uploaded; tombstones are discarded. Cost = the full re-upload,
  /// metered through \p log.
  /// \throws CapacityError if the new seed also fails (caller re-seeds
  /// again or resizes).
  void reseed(u64 new_seed, hw::CommandLog& log);

  void clear(hw::CommandLog& log);

  // ---- hardware-side lookup path ----

  /// Probe for \p key. Cycle-charging contract: one hash-unit cycle,
  /// then one memory read (1 cycle + 1 access) per slot walked along
  /// the linear-probe chain, all charged into \p rec (nullptr = an
  /// uncounted controller-side peek). The cost of probing a given key
  /// is deterministic while the table is unchanged — which is what
  /// makes the ProbeMemo's cost replay exact.
  [[nodiscard]] std::optional<RuleEntry> lookup(const Key68& key,
                                                hw::CycleRecorder* rec) const;

  /// Memoizing probe (the batch combiner's entry point): consult
  /// \p memo first; on a hit charge one cycle plus the replaced probe's
  /// memory accesses (see ProbeMemo's contract) and bump \p memo_hits;
  /// on a miss run the real probe, charge its true cost, and memoize
  /// the (verdict, access-count) pair for as long as the memo's device
  /// binding holds. The table must not be mutated while entries are
  /// live — guaranteed because every update-path mutation bumps the
  /// device epoch (so bind() drops the entries) and the dataplane
  /// classifies against frozen snapshots.
  [[nodiscard]] std::optional<RuleEntry> lookup_memo(const Key68& key,
                                                     hw::CycleRecorder* rec,
                                                     ProbeMemo& memo,
                                                     u64& memo_hits) const;

  // ---- introspection ----

  [[nodiscard]] const hw::Memory& memory() const { return mem_; }
  [[nodiscard]] u32 size() const { return live_; }
  [[nodiscard]] u32 tombstones() const { return tombstones_; }
  [[nodiscard]] double load_factor() const {
    return static_cast<double>(live_ + tombstones_) /
           static_cast<double>(mem_.depth());
  }

  /// Word layout width: valid(1) tomb(1) key(68) rule(16) prio(16)
  /// action(16) = 118 bits.
  static constexpr unsigned kWordBits = 1 + 1 + 68 + 16 + 16 + 16;

 private:
  struct Slot {
    bool valid = false;
    bool tombstone = false;
    Key68 key{};
    RuleEntry entry{};
  };

  [[nodiscard]] Slot decode(u32 addr, hw::CycleRecorder* rec) const;
  void encode(u32 addr, const Slot& s, hw::CommandLog& log);

  hw::Memory mem_;
  Key68Hasher hasher_;
  u32 max_probes_;
  u32 live_ = 0;
  u32 tombstones_ = 0;
};

}  // namespace pclass::core
