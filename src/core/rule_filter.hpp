/// \file rule_filter.hpp
/// The Rule Filter memory block (§III.D, §IV.A): rules are stored at the
/// address produced by the hardware hash of their 68-bit merged label key
/// ("The final address to store each rule in the Rule Filter block is
/// performed using a hash function implemented in hardware").
///
/// Collisions are resolved by linear probing; the stored key is compared
/// on lookup (the hardware's match confirm), so a probe either returns
/// the unique rule owning that label combination or reports a miss.
/// Deletions leave tombstones to keep probe chains intact; the
/// controller can rebuild the table when tombstones accumulate.
#pragma once

#include <optional>
#include <string>

#include "common/hash.hpp"
#include "common/key68.hpp"
#include "common/types.hpp"
#include "hwsim/memory.hpp"
#include "hwsim/update_bus.hpp"

namespace pclass::core {

/// What the filter returns on a hit.
struct RuleEntry {
  RuleId rule;
  Priority priority = kNoPriority;
  u32 action = 0;

  friend constexpr auto operator<=>(const RuleEntry&,
                                    const RuleEntry&) = default;
};

/// Hashed rule memory.
class RuleFilter {
 public:
  /// \param depth       bucket count.
  /// \param max_probes  linear-probe bound; insert throws CapacityError
  ///                    beyond it (the controller re-seeds or resizes).
  RuleFilter(const std::string& name, u32 depth, u32 max_probes,
             u64 hash_seed);

  // ---- controller-side update path ----

  /// Store \p entry under \p key. A rule upload is the paper's §V.A cost:
  /// the caller logs one hash compute, and the entry occupies one word
  /// (written in two pin-limited halves — two commands — matching "one
  /// cycle to store source information and one clock cycle to store
  /// destination information").
  /// \throws CapacityError when the probe bound or load limit is hit.
  /// \throws InternalError on duplicate key (rule dedup is upstream).
  void insert(const Key68& key, const RuleEntry& entry, hw::CommandLog& log);

  /// Remove the entry stored under \p key (tombstoned).
  void remove(const Key68& key, hw::CommandLog& log);

  /// Rewrite the entry stored under \p key in place (OpenFlow MODIFY:
  /// same match, new action/priority). Costs one hash (logged by the
  /// caller) plus the two-beat word rewrite — as cheap as an insert.
  /// \throws InternalError if the key is not present.
  void modify(const Key68& key, const RuleEntry& entry, hw::CommandLog& log);

  /// Rebuild the table under a fresh hash seed (the controller's answer
  /// to a probe-bound CapacityError): every live entry is re-hashed and
  /// re-uploaded; tombstones are discarded. Cost = the full re-upload,
  /// metered through \p log.
  /// \throws CapacityError if the new seed also fails (caller re-seeds
  /// again or resizes).
  void reseed(u64 new_seed, hw::CommandLog& log);

  void clear(hw::CommandLog& log);

  // ---- hardware-side lookup path ----

  /// Probe for \p key: one hash cycle plus one memory read per probe.
  [[nodiscard]] std::optional<RuleEntry> lookup(const Key68& key,
                                                hw::CycleRecorder* rec) const;

  // ---- introspection ----

  [[nodiscard]] const hw::Memory& memory() const { return mem_; }
  [[nodiscard]] u32 size() const { return live_; }
  [[nodiscard]] u32 tombstones() const { return tombstones_; }
  [[nodiscard]] double load_factor() const {
    return static_cast<double>(live_ + tombstones_) /
           static_cast<double>(mem_.depth());
  }

  /// Word layout width: valid(1) tomb(1) key(68) rule(16) prio(16)
  /// action(16) = 118 bits.
  static constexpr unsigned kWordBits = 1 + 1 + 68 + 16 + 16 + 16;

 private:
  struct Slot {
    bool valid = false;
    bool tombstone = false;
    Key68 key{};
    RuleEntry entry{};
  };

  [[nodiscard]] Slot decode(u32 addr, hw::CycleRecorder* rec) const;
  void encode(u32 addr, const Slot& s, hw::CommandLog& log);

  hw::Memory mem_;
  Key68Hasher hasher_;
  u32 max_probes_;
  u32 live_ = 0;
  u32 tombstones_ = 0;
};

}  // namespace pclass::core
