/// \file path_controller.hpp
/// Online execution-path controller for the phase-2 batch hot path.
///
/// classify_batch() can serve a batch three ways, all with identical
/// verdicts and per-packet modeled memory accesses:
///
///   * scalar loop      — classify() per packet; the exact cost model
///                        with no batch scaffolding (cheapest on traffic
///                        with no intra-batch sharing, e.g. cache-thrash);
///   * phase2           — the sorted-key batch engine, probe memo off;
///   * phase2 + memo    — the batch engine with the snapshot-keyed
///                        combination-probe memo in front of the Rule
///                        Filter (cheapest when label combinations
///                        repeat, e.g. fw-like or Zipf traffic).
///
/// Earlier revisions picked between these with two hand-tuned
/// window-threshold gates (bypass the memo under a 2% window hit rate;
/// bypass the batch engine under 5% combine sharing) — constants tuned
/// on one host that the ROADMAP flagged for replacement. This
/// controller replaces both: it keeps an EWMA of *measured host
/// nanoseconds per packet* for each path and picks the cheapest one per
/// batch, with periodic exploration so a path whose estimate went stale
/// (traffic shifted) is re-measured and can win back the slot.
///
/// The controller lives in the caller-owned BatchScratch (one dataplane
/// worker = one scratch), so every worker adapts to its own traffic
/// independently and no state is shared across threads. It never
/// affects correctness: the choice only moves host work, never modeled
/// cost (see the cycle-charging contract in core/classifier.hpp).
#pragma once

#include <array>

#include "common/types.hpp"

namespace pclass::core {

/// The execution paths classify_batch() chooses between per batch.
enum class BatchPath : u8 {
  kScalarLoop = 0,  ///< packet-at-a-time classify() loop
  kPhase2 = 1,      ///< sorted-key batch engine, probe memo off
  kPhase2Memo = 2,  ///< batch engine + snapshot-keyed probe memo
};

inline constexpr usize kNumBatchPaths = 3;

[[nodiscard]] constexpr const char* to_string(BatchPath p) {
  switch (p) {
    case BatchPath::kScalarLoop: return "scalar-loop";
    case BatchPath::kPhase2: return "phase2";
    case BatchPath::kPhase2Memo: return "phase2+memo";
  }
  return "?";
}

/// Per-scratch epsilon-greedy path picker over EWMA host-cost
/// estimates. Not thread-safe by design — one instance per worker
/// scratch, touched only by that worker.
class PathController {
 public:
  /// EWMA smoothing: each observation contributes 1/4. Structural (a
  /// convergence-speed / noise-rejection tradeoff), not workload-tuned:
  /// ~8 batches to forget a stale estimate at any batch size.
  static constexpr double kAlpha = 0.25;
  /// Every kExplorePeriod-th decision measures a non-best eligible path
  /// (round-robin) instead of exploiting, so estimates track shifting
  /// traffic. ~4% steady-state exploration overhead, bounded by the
  /// fact that every path costs within a small factor of the best.
  static constexpr u64 kExplorePeriod = 24;
  /// Batches each eligible path is measured before exploitation starts.
  static constexpr u64 kWarmup = 2;

  /// Pick the path for the next batch. \p memo_eligible gates the
  /// kPhase2Memo arm (config has the memo off => never chosen).
  [[nodiscard]] BatchPath choose(bool memo_eligible) {
    ++decisions_;
    // Warm-up: measure every eligible arm kWarmup times first.
    for (usize a = 0; a < kNumBatchPaths; ++a) {
      if (!eligible(static_cast<BatchPath>(a), memo_eligible)) continue;
      if (arms_[a].observations < kWarmup) return static_cast<BatchPath>(a);
    }
    const BatchPath best = cheapest(memo_eligible);
    if (decisions_ % kExplorePeriod == 0) {
      // Exploration slot: rotate over the non-best eligible arms.
      for (usize step = 0; step < kNumBatchPaths; ++step) {
        const usize a = (explore_cursor_ + step + 1) % kNumBatchPaths;
        if (a != static_cast<usize>(best) &&
            eligible(static_cast<BatchPath>(a), memo_eligible)) {
          explore_cursor_ = a;
          return static_cast<BatchPath>(a);
        }
      }
    }
    return best;
  }

  /// Record the measured host cost of the batch just served.
  void observe(BatchPath path, double host_ns, usize packets) {
    ArmState& a = arms_[static_cast<usize>(path)];
    ++a.batches;
    if (packets == 0 || host_ns < 0) return;
    const double ns_per_pkt = host_ns / static_cast<double>(packets);
    a.ewma_ns_per_pkt = a.observations == 0
                            ? ns_per_pkt
                            : kAlpha * ns_per_pkt +
                                  (1.0 - kAlpha) * a.ewma_ns_per_pkt;
    ++a.observations;
  }

  /// Batches served via \p path (forced-policy batches are counted too,
  /// by classify_batch, so reports always reflect the paths taken).
  [[nodiscard]] u64 batches(BatchPath path) const {
    return arms_[static_cast<usize>(path)].batches;
  }

  [[nodiscard]] double ewma_ns_per_pkt(BatchPath path) const {
    return arms_[static_cast<usize>(path)].ewma_ns_per_pkt;
  }

 private:
  struct ArmState {
    double ewma_ns_per_pkt = 0;
    u64 observations = 0;  ///< EWMA samples folded in
    u64 batches = 0;       ///< batches served via this path
  };

  [[nodiscard]] static bool eligible(BatchPath p, bool memo_eligible) {
    return p != BatchPath::kPhase2Memo || memo_eligible;
  }

  [[nodiscard]] BatchPath cheapest(bool memo_eligible) const {
    BatchPath best = BatchPath::kPhase2;
    double best_cost = arms_[static_cast<usize>(best)].ewma_ns_per_pkt;
    for (usize a = 0; a < kNumBatchPaths; ++a) {
      if (!eligible(static_cast<BatchPath>(a), memo_eligible)) continue;
      const double cost = arms_[a].ewma_ns_per_pkt;
      if (cost < best_cost) {
        best = static_cast<BatchPath>(a);
        best_cost = cost;
      }
    }
    return best;
  }

  std::array<ArmState, kNumBatchPaths> arms_{};
  u64 decisions_ = 0;
  usize explore_cursor_ = 0;
};

}  // namespace pclass::core
