/// \file path_controller.hpp
/// Online execution-path controller for the phase-2 batch hot path.
///
/// classify_batch() can serve a batch three ways, all with identical
/// verdicts and per-packet modeled memory accesses:
///
///   * scalar loop      — classify() per packet; the exact cost model
///                        with no batch scaffolding (cheapest on traffic
///                        with no intra-batch sharing, e.g. cache-thrash);
///   * phase2           — the sorted-key batch engine, probe memo off;
///   * phase2 + memo    — the batch engine with the snapshot-keyed
///                        combination-probe memo in front of the Rule
///                        Filter (cheapest when label combinations
///                        repeat, e.g. fw-like or Zipf traffic).
///
/// v1 of this controller kept a flat EWMA of host ns/packet per path and
/// picked the argmin. That collapses every batch to one number, which
/// breaks on the dataplane where batch *size and sharing* vary wildly:
/// ClassifierElement feeds only the flow-cache misses through, so after
/// warm-up most batches are tiny all-distinct remnants. A path whose
/// estimate was trained on those (high ns/packet: fixed per-batch work
/// amortized over few packets, no intra-batch sharing to exploit) looks
/// expensive even when it would win on the occasional full batch — the
/// small cache-miss-only batches poison the estimate for every size.
///
/// v2 replaces the flat EWMA with a *size-normalized two-parameter cost
/// model* per path, fitted online:
///
///     ns(batch) = a * packets + b * distinct_keys
///
/// `packets` is the batch length; `distinct_keys` is the number of
/// distinct headers in it — the quantity every sharing layer of the
/// batch engine (sorted-run dedup, list-read memo, combine memo, probe
/// memo) actually scales with. A batch-shaped path (phase2) has small
/// `a` (per-packet replay is cheap) and large `b` (each distinct key
/// pays the real walk); the scalar loop is the opposite (a ~ the full
/// per-lookup cost, b ~ 0). Fitting both coefficients lets one model
/// predict the cost of a 2-packet all-distinct remnant batch *and* a
/// 256-packet Zipf batch correctly, so the per-batch argmin is taken at
/// the batch's own (packets, distinct) point instead of a global
/// average — mixed-size traffic converges instead of thrashing.
///
/// The fit is decayed least squares over the two features: each arm
/// keeps exponentially-decayed sufficient statistics (Σn², Σnd, Σd²,
/// Σny, Σdy) and solves the 2x2 normal equations per query. When the
/// features are collinear (d locked to n, e.g. an all-distinct trace —
/// the 2x2 system is singular) it falls back to the one-parameter
/// ns-per-packet fit, which is exactly v1's model and correct in that
/// regime. Negative coefficients (noise, early observations) are
/// refitted with the offending feature dropped, so predictions are
/// never negative.
///
/// The controller lives in the caller-owned BatchScratch (one dataplane
/// worker = one scratch), so every worker adapts to its own traffic
/// independently and no state is shared across threads. It never
/// affects correctness: the choice only moves host work, never modeled
/// cost (see the cycle-charging contract in core/classifier.hpp).
#pragma once

#include <array>

#include "common/types.hpp"

namespace pclass::core {

/// The execution paths classify_batch() chooses between per batch.
enum class BatchPath : u8 {
  kScalarLoop = 0,  ///< packet-at-a-time classify() loop
  kPhase2 = 1,      ///< sorted-key batch engine, probe memo off
  kPhase2Memo = 2,  ///< batch engine + snapshot-keyed probe memo
};

inline constexpr usize kNumBatchPaths = 3;

[[nodiscard]] constexpr const char* to_string(BatchPath p) {
  switch (p) {
    case BatchPath::kScalarLoop: return "scalar-loop";
    case BatchPath::kPhase2: return "phase2";
    case BatchPath::kPhase2Memo: return "phase2+memo";
  }
  return "?";
}

/// Per-path fitted cost-model coefficients (for reports):
/// predicted ns = ns_per_packet * packets + ns_per_distinct_key * distinct.
struct PathCostModel {
  double ns_per_packet = 0;        ///< a
  double ns_per_distinct_key = 0;  ///< b
};

/// Per-scratch epsilon-greedy path picker over per-path linear cost
/// models. Not thread-safe by design — one instance per worker scratch,
/// touched only by that worker.
class PathController {
 public:
  /// Decay of the sufficient statistics per observation: each new batch
  /// contributes 1/16 of the total weight in steady state (~16-batch
  /// memory). Structural (convergence-speed / noise-rejection
  /// tradeoff), not workload-tuned.
  static constexpr double kDecay = 15.0 / 16.0;
  /// Every kExplorePeriod-th decision measures a non-best eligible path
  /// (round-robin) instead of exploiting, so estimates track shifting
  /// traffic. ~4% steady-state exploration overhead, bounded by the
  /// fact that every path costs within a small factor of the best.
  static constexpr u64 kExplorePeriod = 24;
  /// Batches each eligible path is measured before exploitation starts.
  static constexpr u64 kWarmup = 2;

  /// Pick the path for the next batch of \p packets headers, \p
  /// distinct_keys of them distinct. \p memo_eligible gates the
  /// kPhase2Memo arm (config has the memo off => never chosen).
  [[nodiscard]] BatchPath choose(bool memo_eligible, usize packets,
                                 usize distinct_keys) {
    ++decisions_;
    // Warm-up: measure every eligible arm kWarmup times first.
    for (usize a = 0; a < kNumBatchPaths; ++a) {
      if (!eligible(static_cast<BatchPath>(a), memo_eligible)) continue;
      if (arms_[a].observations < kWarmup) return static_cast<BatchPath>(a);
    }
    const BatchPath best = cheapest(memo_eligible, packets, distinct_keys);
    if (decisions_ % kExplorePeriod == 0) {
      // Exploration slot: rotate over the non-best eligible arms.
      for (usize step = 0; step < kNumBatchPaths; ++step) {
        const usize a = (explore_cursor_ + step + 1) % kNumBatchPaths;
        if (a != static_cast<usize>(best) &&
            eligible(static_cast<BatchPath>(a), memo_eligible)) {
          explore_cursor_ = a;
          return static_cast<BatchPath>(a);
        }
      }
    }
    return best;
  }

  /// Record the measured host cost of the batch just served. A negative
  /// \p host_ns (forced-policy batches skip the clock reads) still
  /// counts the batch for the per-path counters but feeds no statistics.
  void observe(BatchPath path, double host_ns, usize packets,
               usize distinct_keys) {
    ArmState& a = arms_[static_cast<usize>(path)];
    ++a.batches;
    if (packets == 0 || host_ns < 0) return;
    // distinct is structurally in [1, packets]; clamp so a caller that
    // skipped the count (0) cannot corrupt the fit.
    const double n = static_cast<double>(packets);
    const double d = static_cast<double>(
        distinct_keys == 0 ? packets
                           : (distinct_keys > packets ? packets
                                                      : distinct_keys));
    a.s_nn = kDecay * a.s_nn + n * n;
    a.s_nd = kDecay * a.s_nd + n * d;
    a.s_dd = kDecay * a.s_dd + d * d;
    a.s_ny = kDecay * a.s_ny + n * host_ns;
    a.s_dy = kDecay * a.s_dy + d * host_ns;
    ++a.observations;
  }

  /// Predicted host cost of serving (packets, distinct) via \p path.
  [[nodiscard]] double predict_ns(BatchPath path, usize packets,
                                  usize distinct_keys) const {
    const PathCostModel m = cost_model(path);
    return m.ns_per_packet * static_cast<double>(packets) +
           m.ns_per_distinct_key * static_cast<double>(distinct_keys);
  }

  /// The fitted (a, b) for \p path: solve the decayed 2x2 normal
  /// equations; fall back to the one-feature ns-per-packet fit when the
  /// features are collinear (singular system) or a coefficient comes out
  /// negative (both coefficients are costs — physically >= 0).
  [[nodiscard]] PathCostModel cost_model(BatchPath path) const {
    const ArmState& s = arms_[static_cast<usize>(path)];
    PathCostModel m;
    if (s.observations == 0) return m;
    const double det = s.s_nn * s.s_dd - s.s_nd * s.s_nd;
    // Relative singularity test: det of a collinear system is ~0 against
    // the scale of its diagonal product.
    if (det > 1e-9 * s.s_nn * s.s_dd) {
      m.ns_per_packet = (s.s_ny * s.s_dd - s.s_dy * s.s_nd) / det;
      m.ns_per_distinct_key = (s.s_dy * s.s_nn - s.s_ny * s.s_nd) / det;
      if (m.ns_per_packet >= 0 && m.ns_per_distinct_key >= 0) return m;
    }
    if (m.ns_per_packet < 0 && s.s_dd > 0) {
      // Packets came out as a credit: charge everything to distinct keys.
      return {0.0, s.s_dy / s.s_dd};
    }
    // Collinear or negative-b: the v1 regime — one ns-per-packet slope.
    return {s.s_nn > 0 ? s.s_ny / s.s_nn : 0.0, 0.0};
  }

  /// Batches served via \p path (forced-policy batches are counted too,
  /// by classify_batch, so reports always reflect the paths taken).
  [[nodiscard]] u64 batches(BatchPath path) const {
    return arms_[static_cast<usize>(path)].batches;
  }

  /// Timed observations folded into \p path's fit (0 under forced
  /// policies, which skip the clock).
  [[nodiscard]] u64 observations(BatchPath path) const {
    return arms_[static_cast<usize>(path)].observations;
  }

 private:
  struct ArmState {
    // Exponentially-decayed sufficient statistics of the least-squares
    // fit ns ~= a*n + b*d over the observed (n=packets, d=distinct,
    // y=host ns) triples.
    double s_nn = 0, s_nd = 0, s_dd = 0;
    double s_ny = 0, s_dy = 0;
    u64 observations = 0;  ///< timed samples folded in
    u64 batches = 0;       ///< batches served via this path
  };

  [[nodiscard]] static bool eligible(BatchPath p, bool memo_eligible) {
    return p != BatchPath::kPhase2Memo || memo_eligible;
  }

  [[nodiscard]] BatchPath cheapest(bool memo_eligible, usize packets,
                                   usize distinct_keys) const {
    BatchPath best = BatchPath::kPhase2;
    double best_cost = predict_ns(best, packets, distinct_keys);
    for (usize a = 0; a < kNumBatchPaths; ++a) {
      if (!eligible(static_cast<BatchPath>(a), memo_eligible)) continue;
      const double cost =
          predict_ns(static_cast<BatchPath>(a), packets, distinct_keys);
      if (cost < best_cost) {
        best = static_cast<BatchPath>(a);
        best_cost = cost;
      }
    }
    return best;
  }

  std::array<ArmState, kNumBatchPaths> arms_{};
  u64 decisions_ = 0;
  usize explore_cursor_ = 0;
};

}  // namespace pclass::core
