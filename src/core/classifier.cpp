#include "core/classifier.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"

namespace pclass::core {

namespace {

hw::SharedRole role_of(IpAlgorithm a) {
  // Only the two paper engines time-share the Fig. 5 block; the RVH
  // owns its table, so this is never called with kRvh.
  return a == IpAlgorithm::kMbt ? hw::SharedRole::kMbtLevel2
                                : hw::SharedRole::kBstNodes;
}

u64 ipalg_signal(IpAlgorithm a) {
  switch (a) {
    case IpAlgorithm::kMbt: return 0;
    case IpAlgorithm::kBst: return 1;
    case IpAlgorithm::kRvh: return 2;
  }
  return 0;
}

constexpr unsigned kSharedWordBits = 33;  // max(MBT entry 29, BST node 33)

/// Process-unique device ids (start at 1; 0 is ProbeMemo's "unbound").
u64 next_device_id() {
  static std::atomic<u64> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

ConfigurableClassifier::ConfigurableClassifier(ClassifierConfig cfg)
    : cfg_([&] {
        // Reject a bad memo geometry at construction, not from the
        // first memo-eligible batch deep in a dataplane worker.
        if (!ProbeMemo::valid_ways(cfg.batch_memo_ways)) {
          throw ConfigError(
              "ClassifierConfig: batch_memo_ways must be 1 or 2");
        }
        return cfg;
      }()),
      device_id_(next_device_id()),
      ip_tables_{alg::LabelTable<ruleset::SegmentPrefix>(Dimension::kSrcIpHi),
                 alg::LabelTable<ruleset::SegmentPrefix>(Dimension::kSrcIpLo),
                 alg::LabelTable<ruleset::SegmentPrefix>(Dimension::kDstIpHi),
                 alg::LabelTable<ruleset::SegmentPrefix>(
                     Dimension::kDstIpLo)},
      sport_table_(Dimension::kSrcPort),
      dport_table_(Dimension::kDstPort),
      proto_table_(Dimension::kProtocol) {
  for (Dimension d : kAllDimensions) {
    label_prio_[index_of(d)].assign(usize{1} << label_bits(d), kNoPriority);
  }

  const u32 mbt_l2_depth =
      cfg_.mbt.level_capacity.size() > 1 && cfg_.mbt.strides.size() > 1
          ? cfg_.mbt.level_capacity[1] * (u32{1} << cfg_.mbt.strides[1])
          : 0;
  const u32 shared_depth = std::max(mbt_l2_depth, cfg_.bst.max_nodes);

  for (usize i = 0; i < 4; ++i) {
    const Dimension d = kIpDims[i];
    const std::string name = std::string("ip.") + to_string(d);
    lists_[i] = std::make_unique<alg::LabelListStore>(
        name + ".labels", cfg_.label_store_depth, kIpLabelBits);

    auto prio_cb = [this, idx = index_of(d)](Label l) {
      return label_prio_[idx][l.value];
    };

    alg::MbtConfig mc = cfg_.mbt;
    alg::BstConfig bc = cfg_.bst;
    hw::Memory* shared_block = nullptr;
    if (cfg_.share_ip_memory) {
      shared_[i] = std::make_unique<hw::SharedMemory>(
          name + ".shared", shared_depth, kSharedWordBits);
      shared_block = &shared_[i]->block();
      mc.word_bits_override = kSharedWordBits;
      bc.word_bits_override = kSharedWordBits;
    }
    mbt_[i] = std::make_unique<alg::MultiBitTrie>(
        name + ".mbt", mc, *lists_[i], prio_cb, shared_block,
        /*shared_level_index=*/1);
    bst_[i] = std::make_unique<alg::BinarySearchTree>(name, bc, *lists_[i],
                                                      prio_cb, shared_block);
    rvh_[i] = std::make_unique<alg::RangeVectorHash>(name, cfg_.rvh,
                                                     *lists_[i], prio_cb);
    if (cfg_.share_ip_memory && cfg_.ip_algorithm != IpAlgorithm::kRvh) {
      shared_[i]->bind(role_of(cfg_.ip_algorithm));
    }
  }

  sport_regs_ = std::make_unique<alg::PortRegisterFile>("port.src",
                                                        cfg_.ports);
  dport_regs_ = std::make_unique<alg::PortRegisterFile>("port.dst",
                                                        cfg_.ports);
  proto_lut_ = std::make_unique<alg::ProtocolLut>("proto");
  rule_filter_ = std::make_unique<RuleFilter>(
      "rule_filter", cfg_.rule_filter_depth, cfg_.rule_filter_max_probes,
      cfg_.hash_seed);
}

ConfigurableClassifier::~ConfigurableClassifier() = default;

void ConfigurableClassifier::set_batch_memo_ways(u32 ways) {
  if (!ProbeMemo::valid_ways(ways)) {
    throw ConfigError("set_batch_memo_ways: ways must be 1 or 2");
  }
  cfg_.batch_memo_ways = ways;
}

ruleset::SegmentPrefix ConfigurableClassifier::ip_segment(
    const ruleset::Rule& r, usize ip_dim_index) {
  switch (ip_dim_index) {
    case 0: return r.src_ip.hi_segment();
    case 1: return r.src_ip.lo_segment();
    case 2: return r.dst_ip.hi_segment();
    case 3: return r.dst_ip.lo_segment();
    default: throw InternalError("bad ip dimension index");
  }
}

hw::UpdateStats ConfigurableClassifier::apply(hw::CommandLog& log) {
  // Every update-path mutation funnels through here, so bumping the
  // epoch exactly here is what makes a persistent ProbeMemo safe: the
  // next bind() sees a new epoch and drops every cached verdict.
  ++device_epoch_;
  hw::UpdateBus batch;
  for (const hw::UpdateCommand& cmd : log.take()) {
    bus_.charge(cmd);
    batch.charge(cmd);
  }
  return batch.stats();
}

std::array<Label, kNumDimensions> ConfigurableClassifier::acquire_labels(
    const ruleset::Rule& r, hw::CommandLog& log,
    std::array<std::vector<std::pair<ruleset::SegmentPrefix, Label>>, 4>*
        bst_bulk) {
  std::array<Label, kNumDimensions> labels{};

  for (usize i = 0; i < 4; ++i) {
    const Dimension d = kIpDims[i];
    const ruleset::SegmentPrefix v = ip_segment(r, i);
    const alg::AcquireResult acq = ip_tables_[i].acquire(v, r.priority);
    labels[index_of(d)] = acq.label;
    const Priority best = ip_tables_[i].best_priority(v);
    Priority& shadow = label_prio_[index_of(d)][acq.label.value];
    if (acq.created) {
      shadow = best;
      switch (cfg_.ip_algorithm) {
        case IpAlgorithm::kMbt:
          mbt_[i]->insert(v, acq.label, log);
          break;
        case IpAlgorithm::kRvh:
          rvh_[i]->insert(v, acq.label, log);
          break;
        case IpAlgorithm::kBst:
          if (bst_bulk != nullptr) {
            (*bst_bulk)[i].emplace_back(v, acq.label);
          } else {
            bst_[i]->insert(v, acq.label, log);
          }
          break;
      }
    } else if (shadow != best) {
      shadow = best;
      switch (cfg_.ip_algorithm) {
        case IpAlgorithm::kMbt:
          mbt_[i]->refresh(v, log);
          break;
        case IpAlgorithm::kRvh:
          rvh_[i]->refresh(v, log);
          break;
        case IpAlgorithm::kBst:
          // bulk BST: the single rebuild at the end re-sorts everything
          if (bst_bulk == nullptr) {
            bst_[i]->refresh(v, log);
          }
          break;
      }
    }
  }

  auto do_port = [&](alg::LabelTable<ruleset::PortRange>& table,
                     alg::PortRegisterFile& regs, const ruleset::PortRange& v,
                     Dimension d) {
    const alg::AcquireResult acq = table.acquire(v, r.priority);
    labels[index_of(d)] = acq.label;
    label_prio_[index_of(d)][acq.label.value] = table.best_priority(v);
    if (acq.created) {
      regs.insert(v, acq.label, log);
    }
  };
  do_port(sport_table_, *sport_regs_, r.src_port, Dimension::kSrcPort);
  do_port(dport_table_, *dport_regs_, r.dst_port, Dimension::kDstPort);

  const alg::AcquireResult acq = proto_table_.acquire(r.proto, r.priority);
  labels[index_of(Dimension::kProtocol)] = acq.label;
  label_prio_[index_of(Dimension::kProtocol)][acq.label.value] =
      proto_table_.best_priority(r.proto);
  if (acq.created) {
    proto_lut_->insert(r.proto, acq.label, log);
  }

  return labels;
}

void ConfigurableClassifier::release_labels(const ruleset::Rule& r,
                                            hw::CommandLog& log) {
  for (usize i = 0; i < 4; ++i) {
    const Dimension d = kIpDims[i];
    const ruleset::SegmentPrefix v = ip_segment(r, i);
    const alg::ReleaseResult rel = ip_tables_[i].release(v, r.priority);
    if (rel.freed) {
      label_prio_[index_of(d)][rel.label.value] = kNoPriority;
      switch (cfg_.ip_algorithm) {
        case IpAlgorithm::kMbt: mbt_[i]->remove(v, log); break;
        case IpAlgorithm::kBst: bst_[i]->remove(v, log); break;
        case IpAlgorithm::kRvh: rvh_[i]->remove(v, log); break;
      }
    } else {
      const Priority best = ip_tables_[i].best_priority(v);
      Priority& shadow = label_prio_[index_of(d)][rel.label.value];
      if (shadow != best) {
        shadow = best;
        switch (cfg_.ip_algorithm) {
          case IpAlgorithm::kMbt: mbt_[i]->refresh(v, log); break;
          case IpAlgorithm::kBst: bst_[i]->refresh(v, log); break;
          case IpAlgorithm::kRvh: rvh_[i]->refresh(v, log); break;
        }
      }
    }
  }

  auto do_port = [&](alg::LabelTable<ruleset::PortRange>& table,
                     alg::PortRegisterFile& regs,
                     const ruleset::PortRange& v, Dimension d) {
    const alg::ReleaseResult rel = table.release(v, r.priority);
    if (rel.freed) {
      label_prio_[index_of(d)][rel.label.value] = kNoPriority;
      regs.remove(v, log);
    } else {
      label_prio_[index_of(d)][rel.label.value] = table.best_priority(v);
    }
  };
  do_port(sport_table_, *sport_regs_, r.src_port, Dimension::kSrcPort);
  do_port(dport_table_, *dport_regs_, r.dst_port, Dimension::kDstPort);

  const alg::ReleaseResult rel = proto_table_.release(r.proto, r.priority);
  if (rel.freed) {
    label_prio_[index_of(Dimension::kProtocol)][rel.label.value] =
        kNoPriority;
    proto_lut_->remove(r.proto, log);
  } else {
    label_prio_[index_of(Dimension::kProtocol)][rel.label.value] =
        proto_table_.best_priority(r.proto);
  }
}

hw::UpdateStats ConfigurableClassifier::add_rule(const ruleset::Rule& r) {
  if (!r.id.valid()) {
    throw ConfigError("add_rule: rule must carry a valid RuleId");
  }
  if (installed_.contains(r.id)) {
    throw ConfigError("add_rule: duplicate rule id " +
                      std::to_string(r.id.value));
  }
  const u64 fp = ruleset::match_fingerprint(r);
  if (match_index_.contains(fp)) {
    throw ConfigError("add_rule: a rule with an identical match part is "
                      "already installed (id " +
                      std::to_string(match_index_.at(fp).value) + ")");
  }
  hw::CommandLog log;
  const auto labels = acquire_labels(r, log, nullptr);
  const Key68 key = Key68::merge(labels);
  log.hash_compute("rule_filter.hash");
  filter_insert_with_reseed(key, RuleEntry{r.id, r.priority, r.action.token},
                            log);
  installed_.emplace(r.id, InstalledRule{r, key});
  match_index_.emplace(fp, r.id);
  return apply(log);
}

hw::UpdateStats ConfigurableClassifier::add_rules(
    const ruleset::RuleSet& rules) {
  hw::CommandLog log;
  std::array<std::vector<std::pair<ruleset::SegmentPrefix, Label>>, 4>
      staged;
  auto* bulk = cfg_.ip_algorithm == IpAlgorithm::kBst ? &staged : nullptr;

  for (const ruleset::Rule& r : rules) {
    if (!r.id.valid()) {
      throw ConfigError("add_rules: rule must carry a valid RuleId");
    }
    if (installed_.contains(r.id)) {
      throw ConfigError("add_rules: duplicate rule id " +
                        std::to_string(r.id.value));
    }
    const u64 fp = ruleset::match_fingerprint(r);
    if (match_index_.contains(fp)) {
      throw ConfigError("add_rules: duplicate match part (dedup the set "
                        "first)");
    }
    const auto labels = acquire_labels(r, log, bulk);
    const Key68 key = Key68::merge(labels);
    log.hash_compute("rule_filter.hash");
    filter_insert_with_reseed(key,
                              RuleEntry{r.id, r.priority, r.action.token},
                              log);
    installed_.emplace(r.id, InstalledRule{r, key});
    match_index_.emplace(fp, r.id);
  }
  if (bulk != nullptr) {
    for (usize i = 0; i < 4; ++i) {
      bst_[i]->insert_bulk(staged[i], log);
    }
  }
  return apply(log);
}

hw::UpdateStats ConfigurableClassifier::remove_rule(RuleId id) {
  const auto it = installed_.find(id);
  if (it == installed_.end()) {
    throw ConfigError("remove_rule: rule " + std::to_string(id.value) +
                      " is not installed");
  }
  hw::CommandLog log;
  rule_filter_->remove(it->second.key, log);
  release_labels(it->second.rule, log);
  match_index_.erase(ruleset::match_fingerprint(it->second.rule));
  installed_.erase(it);
  return apply(log);
}

void ConfigurableClassifier::filter_insert_with_reseed(
    const Key68& key, const RuleEntry& entry, hw::CommandLog& log) {
  constexpr u32 kMaxReseeds = 16;
  while (true) {
    try {
      rule_filter_->insert(key, entry, log);
      return;
    } catch (const CapacityError&) {
      if (rule_filter_->size() + 1 > rule_filter_->memory().depth()) {
        throw;  // genuinely full: no seed can help
      }
      // Try successive salts; each reseed re-uploads the whole table
      // through the log, so the caller sees the true recovery cost.
      // reseed() restores the previous layout when a candidate seed
      // fails, so state stays consistent throughout.
      bool reseeded = false;
      while (!reseeded && reseed_attempts_ < kMaxReseeds) {
        ++reseed_attempts_;
        cfg_.hash_seed = mix64(cfg_.hash_seed + reseed_attempts_);
        try {
          rule_filter_->reseed(cfg_.hash_seed, log);
          reseeded = true;
        } catch (const CapacityError&) {
          // candidate seed also clusters; try the next one
        }
      }
      if (!reseeded) {
        throw;
      }
    }
  }
}

hw::UpdateStats ConfigurableClassifier::modify_rule(RuleId id,
                                                    ruleset::Action action) {
  const auto it = installed_.find(id);
  if (it == installed_.end()) {
    throw ConfigError("modify_rule: rule " + std::to_string(id.value) +
                      " is not installed");
  }
  hw::CommandLog log;
  ruleset::Rule& rule = it->second.rule;
  rule.action = action;
  log.hash_compute("rule_filter.hash");
  rule_filter_->modify(it->second.key,
                       RuleEntry{rule.id, rule.priority, action.token}, log);
  return apply(log);
}

hw::UpdateStats ConfigurableClassifier::set_ip_algorithm(IpAlgorithm alg) {
  if (alg == cfg_.ip_algorithm) {
    return {};
  }
  hw::CommandLog log;
  // 1. Clear the deactivating engines while their binding is still live.
  for (usize i = 0; i < 4; ++i) {
    switch (cfg_.ip_algorithm) {
      case IpAlgorithm::kMbt: mbt_[i]->clear(log); break;
      case IpAlgorithm::kBst: bst_[i]->clear(log); break;
      case IpAlgorithm::kRvh: rvh_[i]->clear(log); break;
    }
  }
  // 2. Flush + re-bind the shared blocks (Fig. 5). The RVH owns its
  // table, so selecting it leaves the shared blocks bound (and empty)
  // where the last trie-family engine left them.
  if (cfg_.share_ip_memory && alg != IpAlgorithm::kRvh) {
    for (usize i = 0; i < 4; ++i) {
      shared_[i]->bind(role_of(alg));
    }
  }
  // 3. Drive the select line.
  log.config_toggle("IPalg_s", ipalg_signal(alg));
  cfg_.ip_algorithm = alg;
  // 4. Rebuild the newly selected engines from the label tables.
  rebuild_active_ip_engines(log);
  return apply(log);
}

void ConfigurableClassifier::rebuild_active_ip_engines(hw::CommandLog& log) {
  for (usize i = 0; i < 4; ++i) {
    std::vector<std::pair<ruleset::SegmentPrefix, Label>> live;
    ip_tables_[i].for_each(
        [&](const ruleset::SegmentPrefix& v, Label l, Priority) {
          live.emplace_back(v, l);
        });
    if (cfg_.ip_algorithm == IpAlgorithm::kBst) {
      bst_[i]->insert_bulk(live, log);
    } else if (cfg_.ip_algorithm == IpAlgorithm::kRvh) {
      for (const auto& [v, l] : live) {
        rvh_[i]->insert(v, l, log);
      }
    } else {
      for (const auto& [v, l] : live) {
        mbt_[i]->insert(v, l, log);
      }
    }
  }
}

alg::ListRef ConfigurableClassifier::ip_lookup(usize ip_dim_index, u16 key,
                                               hw::CycleRecorder* rec) const {
  switch (cfg_.ip_algorithm) {
    case IpAlgorithm::kMbt: return mbt_[ip_dim_index]->lookup(key, rec);
    case IpAlgorithm::kBst: return bst_[ip_dim_index]->lookup(key, rec);
    case IpAlgorithm::kRvh: return rvh_[ip_dim_index]->lookup(key, rec);
  }
  return alg::ListRef{};
}

ClassifyResult ConfigurableClassifier::classify(
    const net::FiveTuple& h) const {
  ClassifyResult out;

  // Phase 2: the seven dimension lookups run in parallel; each gets its
  // own recorder, the phase costs the slowest one. All label lists live
  // in stack scratch (SmallVec) — the steady-state lookup path performs
  // no heap allocation.
  std::array<hw::CycleRecorder, kNumDimensions> recs;
  std::array<alg::ListRef, 4> ip_refs;
  for (usize i = 0; i < 4; ++i) {
    const u16 key = static_cast<u16>(
        net::dimension_key(h, kIpDims[i]) & 0xFFFFu);
    ip_refs[i] = ip_lookup(i, key, &recs[index_of(kIpDims[i])]);
  }

  hw::CycleRecorder tail;  // phases 3 + 4
  tail.charge(1, 0);       // label merge network

  if (cfg_.combine_mode == CombineMode::kFirstLabel) {
    // §III.B: "This combination is the product of the highest priority
    // label stored in the first position in the list of each output
    // algorithm." Only the first label of each dimension is needed, so
    // no lists are materialized at all.
    std::array<Label, kNumDimensions> first{};
    first[index_of(Dimension::kSrcPort)] = sport_regs_->lookup_first(
        h.src_port, &recs[index_of(Dimension::kSrcPort)]);
    first[index_of(Dimension::kDstPort)] = dport_regs_->lookup_first(
        h.dst_port, &recs[index_of(Dimension::kDstPort)]);
    first[index_of(Dimension::kProtocol)] = proto_lut_->lookup_first(
        h.protocol, &recs[index_of(Dimension::kProtocol)]);
    bool miss = !first[index_of(Dimension::kSrcPort)].valid() ||
                !first[index_of(Dimension::kDstPort)].valid() ||
                !first[index_of(Dimension::kProtocol)].valid();
    for (usize i = 0; i < 4 && !miss; ++i) {
      if (ip_refs[i].empty()) {
        miss = true;
        break;
      }
      first[index_of(kIpDims[i])] =
          lists_[i]->read_first(ip_refs[i], &recs[index_of(kIpDims[i])]);
    }
    if (!miss) {
      out.crossproduct_probes = 1;
      out.match = rule_filter_->lookup(Key68::merge(first), &tail);
    }
  } else {
    // CrossProduct: enumerate the product of the (short) label lists and
    // keep the highest-priority hit — exact by construction.
    std::array<LabelVec, kNumDimensions> lists;
    bool miss = false;
    for (usize i = 0; i < 4; ++i) {
      lists_[i]->read_list_into(ip_refs[i], &recs[index_of(kIpDims[i])],
                                lists[index_of(kIpDims[i])]);
      if (lists[index_of(kIpDims[i])].empty()) miss = true;
    }
    sport_regs_->lookup_into(h.src_port,
                             &recs[index_of(Dimension::kSrcPort)],
                             lists[index_of(Dimension::kSrcPort)]);
    dport_regs_->lookup_into(h.dst_port,
                             &recs[index_of(Dimension::kDstPort)],
                             lists[index_of(Dimension::kDstPort)]);
    proto_lut_->lookup_into(h.protocol,
                            &recs[index_of(Dimension::kProtocol)],
                            lists[index_of(Dimension::kProtocol)]);
    if (lists[index_of(Dimension::kSrcPort)].empty() ||
        lists[index_of(Dimension::kDstPort)].empty() ||
        lists[index_of(Dimension::kProtocol)].empty()) {
      miss = true;
    }

    if (!miss) {
      std::array<usize, kNumDimensions> idx{};
      std::array<Label, kNumDimensions> combo{};
      std::optional<RuleEntry> best;
      while (true) {
        for (usize d = 0; d < kNumDimensions; ++d) {
          combo[d] = lists[d][idx[d]];
        }
        ++out.crossproduct_probes;
        if (out.crossproduct_probes > cfg_.max_crossproduct_probes) {
          throw InternalError("classify: cross-product probe bound "
                              "exceeded — label lists pathologically "
                              "long");
        }
        const std::optional<RuleEntry> hit =
            rule_filter_->lookup(Key68::merge(combo), &tail);
        if (hit && (!best || hit->priority < best->priority ||
                    (hit->priority == best->priority &&
                     hit->rule < best->rule))) {
          best = hit;
        }
        // Odometer increment over the 7 lists.
        usize d = 0;
        for (; d < kNumDimensions; ++d) {
          if (++idx[d] < lists[d].size()) break;
          idx[d] = 0;
        }
        if (d == kNumDimensions) break;
      }
      out.match = best;
    }
  }

  u64 phase2_cycles = 0;
  for (const auto& r : recs) {
    phase2_cycles = std::max(phase2_cycles, r.cycles());
    out.memory_accesses += r.memory_accesses();
  }
  out.cycles = 1 /*split*/ + phase2_cycles + tail.cycles();
  out.memory_accesses += tail.memory_accesses();
  return out;
}

ClassifyResult ConfigurableClassifier::classify_packet(
    std::span<const u8> bytes) const {
  const std::optional<net::FiveTuple> t = net::parse_five_tuple(bytes);
  if (!t) {
    ClassifyResult miss;
    miss.cycles = 1;  // drop in the parser stage
    return miss;
  }
  return classify(*t);
}

void ConfigurableClassifier::classify_batch(
    std::span<const net::FiveTuple> in,
    std::span<ClassifyResult> out) const {
  BatchScratch scratch;
  classify_batch(in, out, scratch);
}

void ConfigurableClassifier::classify_batch(
    std::span<const net::FiveTuple> in, std::span<ClassifyResult> out,
    BatchScratch& scratch) const {
  if (out.size() < in.size()) {
    throw ConfigError("classify_batch: output span smaller than input");
  }
  if (cfg_.batch_mode == BatchMode::kScalar || in.size() <= 1) {
    // Single-packet batches have nothing to share; the scalar path is
    // the phase-2 engine's exact cost model without its scaffolding.
    for (usize i = 0; i < in.size(); ++i) {
      out[i] = classify(in[i]);
    }
    scratch.last_batch_path = BatchPath::kScalarLoop;
    scratch.last_batch_distinct = 0;
    return;
  }

  // Pick the execution path: forced by policy, or by the per-scratch
  // controller's cost model evaluated at this batch's (packets,
  // distinct_keys) point. Every path yields identical verdicts and
  // per-packet memory accesses, so this only moves host work. The
  // distinct count is only computed when the controller consumes it —
  // forced policies skip the fingerprint pass entirely.
  const bool memo_eligible = cfg_.batch_probe_memo;
  const bool adaptive = cfg_.batch_path_policy == PathPolicy::kAdaptive;
  usize distinct = in.size();
  if (adaptive) {
    // Streaming distinct count: one pass over the same header
    // fingerprints the former sort+unique consumed, deduplicated
    // through an open-addressed presence table (load factor <= 1/2),
    // so the count is value-identical without the per-batch O(n log n)
    // sort. A fingerprint of 0 would collide with the empty-slot
    // sentinel, so it is tracked out-of-band.
    auto& tab = scratch.distinct_fp;
    const usize cap =
        static_cast<usize>(next_pow2(std::max<u64>(16, u64{in.size()} * 2)));
    if (tab.size() != cap) {
      tab.assign(cap, 0);
    } else {
      std::fill(tab.begin(), tab.end(), 0);
    }
    const usize mask = cap - 1;
    bool seen_zero = false;
    usize count = 0;
    for (const net::FiveTuple& t : in) {
      const u64 fp = std::hash<net::FiveTuple>{}(t);
      if (fp == 0) {
        count += !seen_zero;
        seen_zero = true;
        continue;
      }
      usize slot = static_cast<usize>(mix64(fp)) & mask;
      while (tab[slot] != fp) {
        if (tab[slot] == 0) {
          tab[slot] = fp;
          ++count;
          break;
        }
        slot = (slot + 1) & mask;
      }
    }
    distinct = count;
  }
  BatchPath path = BatchPath::kPhase2;
  switch (cfg_.batch_path_policy) {
    case PathPolicy::kForceScalarLoop:
      path = BatchPath::kScalarLoop;
      break;
    case PathPolicy::kForcePhase2:
      path = memo_eligible ? BatchPath::kPhase2Memo : BatchPath::kPhase2;
      break;
    case PathPolicy::kAdaptive:
      path = scratch.controller.choose(memo_eligible, in.size(), distinct);
      break;
  }

  // Host timing only when the controller consumes it: forced policies
  // skip the two clock reads per batch so forced ablation rows carry no
  // overhead the scalar baseline doesn't (observe() with a negative
  // cost still keeps the per-path batch counters truthful).
  std::chrono::steady_clock::time_point t0;
  if (adaptive) t0 = std::chrono::steady_clock::now();
  if (path == BatchPath::kScalarLoop) {
    for (usize i = 0; i < in.size(); ++i) {
      out[i] = classify(in[i]);
    }
  } else {
    classify_batch_phase2(in, out, scratch,
                          path == BatchPath::kPhase2Memo);
  }
  double ns = -1.0;
  if (adaptive) {
    ns = std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - t0)
             .count();
  }
  scratch.controller.observe(path, ns, in.size(), distinct);
  scratch.last_batch_path = path;
  scratch.last_batch_distinct = adaptive ? distinct : 0;
}

namespace {

/// Linear search of the per-batch list-read memo (distinct refs per
/// batch are few; a flat scan beats hashing at these sizes).
BatchScratch::ListReadMemo* find_list_memo(
    std::vector<BatchScratch::ListReadMemo>& memo, u32 ref_addr) {
  for (auto& m : memo) {
    if (m.ref_addr == ref_addr) return &m;
  }
  return nullptr;
}

/// Content hash of one dimension's pooled label list, cached per
/// distinct (off, len) span per batch (identical spans share a pool
/// range by construction, so the packed span is a perfect cache key).
u64 span_content_hash(BatchScratch& s, usize d, alg::LabelSpan sp) {
  const u64 packed = (u64{sp.off} << 32) | sp.len;
  for (const BatchScratch::SpanHash& c : s.span_hashes[d]) {
    if (c.packed == packed) return c.hash;
  }
  u64 h = mix64(0x5349474E00000000ULL ^ sp.len);
  for (u32 k = 0; k < sp.len; ++k) {
    h = mix64(h ^ s.pools[d][sp.off + k].value);
  }
  s.span_hashes[d].push_back({packed, h});
  return h;
}

/// Exact content equality of two spans of the same dimension pool (the
/// collision-proof confirm behind a combine-signature match).
bool span_content_equal(const std::vector<Label>& pool, alg::LabelSpan a,
                        alg::LabelSpan b) {
  if (a.off == b.off && a.len == b.len) return true;
  if (a.len != b.len) return false;
  for (u32 k = 0; k < a.len; ++k) {
    if (pool[a.off + k].value != pool[b.off + k].value) return false;
  }
  return true;
}

}  // namespace

void ConfigurableClassifier::classify_batch_phase2(
    std::span<const net::FiveTuple> in, std::span<ClassifyResult> out,
    BatchScratch& s, bool use_memo) const {
  const usize n = in.size();
  for (usize d = 0; d < kNumDimensions; ++d) {
    s.keys[d].resize(n);
    s.recs[d].assign(n, hw::CycleRecorder{});
    s.pools[d].clear();
    s.spans[d].assign(n, alg::LabelSpan{});
    s.span_hashes[d].clear();
  }
  for (usize i = 0; i < 4; ++i) {
    s.ip_refs[i].assign(n, alg::ListRef{});
    s.list_memo[i].clear();
  }
  s.combine_memo.clear();

  // Gather + sort the per-dimension key lanes for the whole batch.
  for (usize p = 0; p < n; ++p) {
    for (Dimension d : kAllDimensions) {
      s.keys[index_of(d)][p] =
          alg::BatchKey{net::dimension_key(in[p], d) & 0xFFFFu,
                        static_cast<u32>(p)};
    }
  }
  for (usize d = 0; d < kNumDimensions; ++d) {
    alg::sort_batch_keys(s.keys[d]);
  }

  // Phase 2, batched: each engine resolves its sorted run once.
  for (usize i = 0; i < 4; ++i) {
    const usize d = index_of(kIpDims[i]);
    switch (cfg_.ip_algorithm) {
      case IpAlgorithm::kMbt:
        mbt_[i]->lookup_batch_into(s.keys[d], s.ip_refs[i], s.recs[d]);
        break;
      case IpAlgorithm::kBst:
        bst_[i]->lookup_batch_into(s.keys[d], s.ip_refs[i], s.recs[d]);
        break;
      case IpAlgorithm::kRvh:
        rvh_[i]->lookup_batch_into(s.keys[d], s.ip_refs[i], s.recs[d]);
        break;
    }
  }
  const bool cross = cfg_.combine_mode == CombineMode::kCrossProduct;
  // FirstLabel needs only each dimension's winner: the first-label
  // variants skip list materialization and the priority-network sort
  // (mirroring the scalar path's lookup_first), at identical cost.
  if (cross) {
    sport_regs_->lookup_batch_into(s.keys[index_of(Dimension::kSrcPort)],
                                   s.recs[index_of(Dimension::kSrcPort)],
                                   s.pools[index_of(Dimension::kSrcPort)],
                                   s.spans[index_of(Dimension::kSrcPort)]);
    dport_regs_->lookup_batch_into(s.keys[index_of(Dimension::kDstPort)],
                                   s.recs[index_of(Dimension::kDstPort)],
                                   s.pools[index_of(Dimension::kDstPort)],
                                   s.spans[index_of(Dimension::kDstPort)]);
    proto_lut_->lookup_batch_into(s.keys[index_of(Dimension::kProtocol)],
                                  s.recs[index_of(Dimension::kProtocol)],
                                  s.pools[index_of(Dimension::kProtocol)],
                                  s.spans[index_of(Dimension::kProtocol)]);
  } else {
    sport_regs_->lookup_first_batch_into(
        s.keys[index_of(Dimension::kSrcPort)],
        s.recs[index_of(Dimension::kSrcPort)],
        s.pools[index_of(Dimension::kSrcPort)],
        s.spans[index_of(Dimension::kSrcPort)]);
    dport_regs_->lookup_first_batch_into(
        s.keys[index_of(Dimension::kDstPort)],
        s.recs[index_of(Dimension::kDstPort)],
        s.pools[index_of(Dimension::kDstPort)],
        s.spans[index_of(Dimension::kDstPort)]);
    proto_lut_->lookup_first_batch_into(
        s.keys[index_of(Dimension::kProtocol)],
        s.recs[index_of(Dimension::kProtocol)],
        s.pools[index_of(Dimension::kProtocol)],
        s.spans[index_of(Dimension::kProtocol)]);
  }
  if (cross) {
    // IP label-list reads, one per distinct ref per batch; every packet
    // sharing the ref replays the recorded cost (same list, same
    // walk). Iterating in sorted-key order keeps equal refs adjacent.
    for (usize i = 0; i < 4; ++i) {
      const usize d = index_of(kIpDims[i]);
      for (const alg::BatchKey& lane : s.keys[d]) {
        const alg::ListRef ref = s.ip_refs[i][lane.slot];
        BatchScratch::ListReadMemo* m =
            find_list_memo(s.list_memo[i], ref.addr);
        if (m == nullptr) {
          hw::CycleRecorder rc;
          LabelVec tmp;
          lists_[i]->read_list_into(ref, &rc, tmp);
          BatchScratch::ListReadMemo fresh;
          fresh.ref_addr = ref.addr;
          fresh.span.off = static_cast<u32>(s.pools[d].size());
          fresh.span.len = static_cast<u32>(tmp.size());
          fresh.cycles = rc.cycles();
          fresh.accesses = rc.memory_accesses();
          s.pools[d].insert(s.pools[d].end(), tmp.begin(), tmp.end());
          s.list_memo[i].push_back(fresh);
          m = &s.list_memo[i].back();
        }
        s.recs[d][lane.slot].charge(m->cycles, m->accesses);
        s.spans[d][lane.slot] = m->span;
      }
    }
  }

  // The combination-probe memo. Persistent (the default): bind to this
  // device's (id, epoch) — carried over unchanged, cached combinations
  // from earlier batches of the same program keep serving; any device
  // change (snapshot swap rotates the worker onto a different replica,
  // or an in-place update bumped the epoch) drops every entry before a
  // stale verdict could serve. Per-batch mode (the PR-3 A/B reference)
  // invalidates unconditionally.
  ProbeMemo* memo = nullptr;
  if (use_memo) {
    // Rebuild on any geometry mismatch — including shrinks: a config
    // asking for a 16-slot memo must actually get one (the fuzz
    // harness's set-pressure dimension depends on it), not silently
    // keep the scratch's larger default.
    if (s.memo.slots() != ProbeMemo::normalized_slots(cfg_.batch_memo_slots) ||
        s.memo.ways() != cfg_.batch_memo_ways) {
      s.memo = ProbeMemo(cfg_.batch_memo_slots, cfg_.batch_memo_ways);
    }
    bool invalidated = true;
    if (cfg_.batch_memo_persistent) {
      invalidated = s.memo.bind(device_id_, device_epoch_);
    } else {
      s.memo.invalidate();
    }
    if (invalidated) ++s.memo_invalidations;
    memo = &s.memo;
  }

  // Phases 3 + 4 per packet, combining the batch-shared phase-2 results.
  for (usize p = 0; p < n; ++p) {
    ClassifyResult& res = out[p];
    res = ClassifyResult{};
    u64 tail_cycles = 0;
    u64 tail_accesses = 0;

    if (!cross) {
      hw::CycleRecorder tail;
      tail.charge(1, 0);  // label merge network
      // FirstLabel: same control flow (and therefore the same charges)
      // as the scalar path — ports/proto first, then the IP refs until
      // the first empty one.
      std::array<Label, kNumDimensions> first{};
      for (const Dimension d :
           {Dimension::kSrcPort, Dimension::kDstPort, Dimension::kProtocol}) {
        const alg::LabelSpan sp = s.spans[index_of(d)][p];
        first[index_of(d)] =
            sp.empty() ? Label{} : s.pools[index_of(d)][sp.off];
      }
      bool miss = !first[index_of(Dimension::kSrcPort)].valid() ||
                  !first[index_of(Dimension::kDstPort)].valid() ||
                  !first[index_of(Dimension::kProtocol)].valid();
      for (usize i = 0; i < 4 && !miss; ++i) {
        const alg::ListRef ref = s.ip_refs[i][p];
        if (ref.empty()) {
          miss = true;
          break;
        }
        BatchScratch::ListReadMemo* m =
            find_list_memo(s.list_memo[i], ref.addr);
        if (m == nullptr) {
          hw::CycleRecorder rc;
          BatchScratch::ListReadMemo fresh;
          fresh.ref_addr = ref.addr;
          fresh.first = lists_[i]->read_first(ref, &rc);
          fresh.cycles = rc.cycles();
          fresh.accesses = rc.memory_accesses();
          s.list_memo[i].push_back(fresh);
          m = &s.list_memo[i].back();
        }
        s.recs[index_of(kIpDims[i])][p].charge(m->cycles, m->accesses);
        first[index_of(kIpDims[i])] = m->first;
      }
      if (!miss) {
        res.crossproduct_probes = 1;
        const Key68 key = Key68::merge(first);
        res.match = memo != nullptr
                        ? rule_filter_->lookup_memo(key, &tail, *memo,
                                                    res.memo_hits)
                        : rule_filter_->lookup(key, &tail);
      }
      tail_cycles = tail.cycles();
      tail_accesses = tail.memory_accesses();
    } else {
      // Combine-level dedup: packets whose 7 label lists have identical
      // *contents* run an identical odometer — run it once per distinct
      // list set and replay verdict + tail cost. The signature is a
      // per-dimension content hash (span identity would under-group:
      // distinct port keys with identical lists get distinct pool
      // ranges); a signature match is confirmed by exact comparison
      // against the leader's spans so a hash collision cannot share.
      std::array<u64, kNumDimensions> sig;
      for (usize d = 0; d < kNumDimensions; ++d) {
        sig[d] = span_content_hash(s, d, s.spans[d][p]);
      }
      BatchScratch::CombineMemo* cm = nullptr;
      for (auto& m : s.combine_memo) {
        if (m.sig != sig) continue;
        bool same = true;
        for (usize d = 0; d < kNumDimensions && same; ++d) {
          same = span_content_equal(s.pools[d], m.spans[d], s.spans[d][p]);
        }
        if (same) {
          cm = &m;
          break;
        }
      }
      if (cm == nullptr) {
        BatchScratch::CombineMemo fresh;
        fresh.sig = sig;
        for (usize d = 0; d < kNumDimensions; ++d) {
          fresh.spans[d] = s.spans[d][p];
        }
        hw::CycleRecorder tail;
        tail.charge(1, 0);  // label merge network
        bool miss = false;
        // Hoist the label lists into local pointer/length pairs: the
        // probe loop below calls into the rule filter, so without this
        // the compiler must reload the pool vectors' data pointers on
        // every probe (and probes dominate the cross-product path).
        std::array<const Label*, kNumDimensions> list_ptr{};
        std::array<usize, kNumDimensions> list_len{};
        for (usize d = 0; d < kNumDimensions; ++d) {
          const alg::LabelSpan sp = s.spans[d][p];
          list_ptr[d] = s.pools[d].data() + sp.off;
          list_len[d] = sp.len;
          if (sp.len == 0) miss = true;
        }
        if (!miss) {
          std::array<usize, kNumDimensions> idx{};
          std::array<Label, kNumDimensions> combo{};
          std::optional<RuleEntry> best;
          while (true) {
            for (usize d = 0; d < kNumDimensions; ++d) {
              combo[d] = list_ptr[d][idx[d]];
            }
            ++fresh.probes;
            if (fresh.probes > cfg_.max_crossproduct_probes) {
              throw InternalError("classify_batch: cross-product probe "
                                  "bound exceeded — label lists "
                                  "pathologically long");
            }
            const Key68 key = Key68::merge(combo);
            const std::optional<RuleEntry> hit =
                memo != nullptr
                    ? rule_filter_->lookup_memo(key, &tail, *memo,
                                                fresh.memo_hits)
                    : rule_filter_->lookup(key, &tail);
            if (hit && (!best || hit->priority < best->priority ||
                        (hit->priority == best->priority &&
                         hit->rule < best->rule))) {
              best = hit;
            }
            usize d = 0;
            for (; d < kNumDimensions; ++d) {
              if (++idx[d] < list_len[d]) break;
              idx[d] = 0;
            }
            if (d == kNumDimensions) break;
          }
          fresh.match = best;
        }
        fresh.tail_cycles = tail.cycles();
        fresh.tail_accesses = tail.memory_accesses();
        s.combine_memo.push_back(fresh);
        cm = &s.combine_memo.back();
        res.match = cm->match;
        res.crossproduct_probes = cm->probes;
        res.memo_hits = cm->memo_hits;
        tail_cycles = cm->tail_cycles;
        tail_accesses = cm->tail_accesses;
      } else {
        // Repeat list set. With the combination memo active, every
        // probe of this packet was just cached by its leader: each is
        // served in one cycle, still charging the replaced probe's
        // reads. With the memo off (nothing was cached), replay the
        // leader's full tail — cycle-exact with the scalar path.
        res.match = cm->match;
        res.crossproduct_probes = cm->probes;
        if (memo != nullptr) {
          res.memo_hits = cm->probes;
          tail_cycles = 1 + cm->probes;
        } else {
          res.memo_hits = 0;
          tail_cycles = cm->tail_cycles;
        }
        tail_accesses = cm->tail_accesses;
      }
    }

    u64 phase2_cycles = 0;
    for (usize d = 0; d < kNumDimensions; ++d) {
      phase2_cycles = std::max(phase2_cycles, s.recs[d][p].cycles());
      res.memory_accesses += s.recs[d][p].memory_accesses();
    }
    res.cycles = 1 /*split*/ + phase2_cycles + tail_cycles;
    res.memory_accesses += tail_accesses;
  }
}

std::vector<ruleset::Rule> ConfigurableClassifier::installed_rules() const {
  std::vector<ruleset::Rule> out;
  out.reserve(installed_.size());
  for (const auto& [id, ir] : installed_) {
    out.push_back(ir.rule);
  }
  return out;
}

std::optional<ruleset::Rule> ConfigurableClassifier::installed_rule(
    RuleId id) const {
  const auto it = installed_.find(id);
  if (it == installed_.end()) return std::nullopt;
  return it->second.rule;
}

hw::Pipeline ConfigurableClassifier::lookup_pipeline() const {
  u64 ip_latency, ip_ii;
  if (cfg_.ip_algorithm == IpAlgorithm::kMbt) {
    ip_latency = u64{cfg_.mbt.read_cycles} * cfg_.mbt.strides.size() + 1;
    ip_ii = 1;  // fully pipelined levels
  } else if (cfg_.ip_algorithm == IpAlgorithm::kRvh) {
    // Worst case probes every live range-vector signature once: one
    // hash cycle plus one table read per signature group.
    u64 groups = 1;
    for (usize i = 0; i < 4; ++i) {
      groups = std::max<u64>(groups, rvh_[i]->live_length_count());
    }
    ip_latency = groups * (u64{cfg_.rvh.read_cycles} + 1) + 1;
    ip_ii = groups;  // iterative probe loop on one port: not pipelined
  } else {
    u64 depth = 1;
    for (usize i = 0; i < 4; ++i) {
      depth = std::max<u64>(depth, bst_[i]->depth());
    }
    ip_latency = depth * cfg_.bst.read_cycles + 1;
    ip_ii = depth;  // iterative walk on one port: not pipelined
  }
  const u64 field_latency = std::max<u64>(ip_latency, 2);
  return hw::Pipeline{{
      {"header-split", 1, 1},
      {"field-lookup", field_latency, ip_ii},
      {"label-combine", 2, 1},
      {"rule-filter", 1, 1},
  }};
}

MemoryReport ConfigurableClassifier::memory_report() const {
  MemoryReport rep;
  auto add = [&](const std::string& name, u64 cap, u64 used) {
    rep.blocks.push_back({name, cap, used});
    rep.total_capacity_bits += cap;
    rep.total_used_bits += used;
  };

  for (usize i = 0; i < 4; ++i) {
    const auto& strides = cfg_.mbt.strides;
    for (usize k = 0; k < mbt_[i]->levels(); ++k) {
      const hw::Memory& m = mbt_[i]->level_memory(k);
      const bool is_shared = cfg_.share_ip_memory && k == 1;
      const u64 mbt_used = static_cast<u64>(mbt_[i]->node_count(k)) *
                           (u64{1} << strides[k]) * m.word_bits();
      if (is_shared) {
        // The RVH owns its table, so with it selected the shared block
        // holds no live engine data at all.
        const u64 used = cfg_.ip_algorithm == IpAlgorithm::kMbt
                             ? mbt_used
                         : cfg_.ip_algorithm == IpAlgorithm::kBst
                             ? bst_[i]->live_node_bits()
                             : 0;
        add(shared_[i]->physical().name(), m.capacity_bits(), used);
      } else {
        add(m.name(), m.capacity_bits(), mbt_used);
      }
    }
    if (!cfg_.share_ip_memory) {
      add(bst_[i]->memory().name(), bst_[i]->capacity_bits(),
          bst_[i]->live_node_bits());
    }
    add(rvh_[i]->memory().name(), rvh_[i]->capacity_bits(),
        rvh_[i]->live_node_bits());
    add(lists_[i]->memory().name(), lists_[i]->memory().capacity_bits(),
        lists_[i]->live_bits());
  }
  add(proto_lut_->memory().name(), proto_lut_->memory().capacity_bits(),
      proto_lut_->memory().capacity_bits());
  add(rule_filter_->memory().name(),
      rule_filter_->memory().capacity_bits(),
      u64{rule_filter_->size()} * rule_filter_->memory().word_bits());

  rep.register_bits = sport_regs_->registers().total_bits() +
                      dport_regs_->registers().total_bits() +
                      proto_lut_->wildcard_register().total_bits();
  return rep;
}

hw::SynthesisReport ConfigurableClassifier::synthesis_report() const {
  hw::SynthesisModel sm;
  for (usize i = 0; i < 4; ++i) {
    for (usize k = 0; k < mbt_[i]->levels(); ++k) {
      sm.add_memory(mbt_[i]->level_memory(k));  // shared block counted here
    }
    if (!cfg_.share_ip_memory) {
      sm.add_memory(bst_[i]->memory());
    }
    sm.add_memory(rvh_[i]->memory());
    sm.add_memory(lists_[i]->memory());
  }
  sm.add_memory(proto_lut_->memory());
  sm.add_memory(rule_filter_->memory());
  sm.add_register_file(sport_regs_->registers());
  sm.add_register_file(dport_regs_->registers());
  sm.add_register_file(proto_lut_->wildcard_register());
  // Four pipeline phases; the inter-phase registers carry the split
  // header plus the widest intermediate (7 list pointers / 68-bit key).
  sm.add_pipeline_stages(4, 160);
  sm.add_hash_units(1);
  sm.set_fmax_mhz(cfg_.fmax_mhz);
  sm.set_pins_used(500);
  return sm.report();
}

usize ConfigurableClassifier::label_count(Dimension d) const {
  switch (d) {
    case Dimension::kSrcIpHi: return ip_tables_[0].size();
    case Dimension::kSrcIpLo: return ip_tables_[1].size();
    case Dimension::kDstIpHi: return ip_tables_[2].size();
    case Dimension::kDstIpLo: return ip_tables_[3].size();
    case Dimension::kSrcPort: return sport_table_.size();
    case Dimension::kDstPort: return dport_table_.size();
    case Dimension::kProtocol: return proto_table_.size();
  }
  return 0;
}

}  // namespace pclass::core
