/// \file sample.hpp
/// The StatsSampler's per-interval delta record, split into its own
/// header so dataplane::EngineReport can carry a time series without
/// pulling in the sampler (whose live-counter types include
/// dataplane/stats.hpp — keeping this struct dependency-free breaks
/// that cycle).
#pragma once

#include "common/types.hpp"

namespace pclass::telemetry {

/// One interval's delta record (engine-wide sums over all workers).
struct StatsSample {
  u64 t_ns = 0;         ///< end of the interval, since sampler start
  u64 interval_ns = 0;  ///< actual (measured) interval length
  u64 packets = 0;      ///< packets sunk during the interval
  u64 batches = 0;
  u64 cache_hits = 0;
  u64 classifier_lookups = 0;
  u64 probe_memo_hits = 0;
  u64 memory_accesses = 0;
  double mpps = 0;  ///< instantaneous packets/interval in Mpps
  /// Interval latency percentiles (modelled lookup cycles), computed
  /// from the bucket deltas of the live histograms.
  u64 p50_cycles = 0;
  u64 p99_cycles = 0;
  /// Snapshot versions across workers at sample time (0 = none yet).
  u64 min_version = 0;
  u64 max_version = 0;
  /// Update-visibility observations landing in this interval and their
  /// mean latency (see WorkerLive::update_visibility_*).
  u64 update_visibility_samples = 0;
  double update_visibility_mean_ns = 0;
};

}  // namespace pclass::telemetry
