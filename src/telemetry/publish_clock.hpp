/// \file publish_clock.hpp
/// Version -> publish-timestamp table behind the update-visibility
/// measurement: the publisher notes steady_now_ns() for a version just
/// before the snapshot swap, and each worker that later observes the
/// version computes `observe - publish` — the end-to-end latency from
/// "controller published" to "this worker's lookups use it".
///
/// Writer: the single publisher thread (serialized by its writer
/// mutex). Readers: N workers, lock-free. Each slot is a seqlock pair
/// (version, t_ns): the writer invalidates, stores the timestamp, then
/// stores the version with release order; a reader accepts the
/// timestamp only when the version matches before and after the read.
/// The table is a power-of-two window over recent versions — under a
/// storm an old version's slot may be recycled before a slow worker
/// looks, in which case lookup() misses and the sample is simply not
/// taken (visibility is a measurement, never a correctness dependency).
#pragma once

#include <array>
#include <atomic>
#include <optional>

#include "common/types.hpp"

namespace pclass::telemetry {

class PublishClock {
 public:
  static constexpr usize kSlots = 1024;  // power of two

  /// Writer side: record that \p version was published at \p t_ns.
  void note(u64 version, u64 t_ns) {
    Slot& s = slots_[version & (kSlots - 1)];
    s.version.store(0, std::memory_order_relaxed);
    s.t_ns.store(t_ns, std::memory_order_relaxed);
    s.version.store(version, std::memory_order_release);
  }

  /// Reader side: the publish timestamp of \p version, if its slot has
  /// not been recycled. Version 0 (the empty sentinel) never resolves.
  [[nodiscard]] std::optional<u64> lookup(u64 version) const {
    if (version == 0) return std::nullopt;
    const Slot& s = slots_[version & (kSlots - 1)];
    if (s.version.load(std::memory_order_acquire) != version) {
      return std::nullopt;
    }
    const u64 t = s.t_ns.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.version.load(std::memory_order_relaxed) != version) {
      return std::nullopt;  // recycled mid-read
    }
    return t;
  }

 private:
  struct Slot {
    std::atomic<u64> version{0};
    std::atomic<u64> t_ns{0};
  };
  std::array<Slot, kSlots> slots_{};
};

}  // namespace pclass::telemetry
