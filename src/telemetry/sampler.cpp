#include "telemetry/sampler.hpp"

#include <chrono>
#include <cmath>

namespace pclass::telemetry {

StatsSampler::StatsSampler(std::vector<WorkerTelemetry*> workers,
                           u64 interval_ms, usize keep_limit)
    : workers_(std::move(workers)),
      interval_ms_(interval_ms == 0 ? 1 : interval_ms),
      keep_limit_(keep_limit) {}

StatsSampler::~StatsSampler() { stop(); }

void StatsSampler::start() {
  t_start_ns_ = steady_now_ns();
  t_prev_ns_ = t_start_ns_;
  thread_ = std::thread([this] { loop(); });
}

void StatsSampler::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final flush: the callers stop() after the workers joined, so this
  // tick captures whatever landed after the last periodic one — the
  // step that makes sum(deltas) == end-of-run totals exact.
  tick();
  stopped_ = true;
}

void StatsSampler::loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stopping_) {
    cv_.wait_for(lk, std::chrono::milliseconds(interval_ms_),
                 [&] { return stopping_; });
    if (stopping_) break;
    lk.unlock();
    tick();
    lk.lock();
  }
}

void StatsSampler::tick() {
  const u64 now = steady_now_ns();
  LiveSnapshot cur{};
  for (const WorkerTelemetry* w : workers_) {
    if (w != nullptr) cur.add(w->live);
  }
  for (WorkerTelemetry* w : workers_) {
    if (w == nullptr) continue;
    if (keep_limit_ == 0) {
      w->ring.drain(nullptr);  // collection off; drop accounting only
    } else if (events_.size() < keep_limit_) {
      w->ring.drain(&events_);
    } else {
      truncated_ += w->ring.drain(nullptr);
    }
  }
  if (keep_limit_ > 0 && events_.size() > keep_limit_) {
    truncated_ += events_.size() - keep_limit_;
    events_.resize(keep_limit_);
  }

  StatsSample s;
  s.t_ns = now - t_start_ns_;
  s.interval_ns = now - t_prev_ns_;
  s.packets = cur.packets - prev_.packets;
  s.batches = cur.batches - prev_.batches;
  s.cache_hits = cur.cache_hits - prev_.cache_hits;
  s.classifier_lookups = cur.classifier_lookups - prev_.classifier_lookups;
  s.probe_memo_hits = cur.probe_memo_hits - prev_.probe_memo_hits;
  s.memory_accesses = cur.memory_accesses - prev_.memory_accesses;
  s.mpps = s.interval_ns == 0
               ? 0.0
               : static_cast<double>(s.packets) * 1e3 /
                     static_cast<double>(s.interval_ns);
  std::array<u64, AtomicHistogram::kBuckets> delta_buckets;
  u64 delta_count = 0;
  for (usize i = 0; i < delta_buckets.size(); ++i) {
    delta_buckets[i] = cur.latency_buckets[i] - prev_.latency_buckets[i];
    delta_count += delta_buckets[i];
  }
  s.p50_cycles = static_cast<u64>(std::llround(
      dataplane::LatencyHistogram::percentile_from(delta_buckets,
                                                   delta_count, 50)));
  s.p99_cycles = static_cast<u64>(std::llround(
      dataplane::LatencyHistogram::percentile_from(delta_buckets,
                                                   delta_count, 99)));
  s.min_version = cur.min_version;
  s.max_version = cur.max_version;
  s.update_visibility_samples =
      cur.update_visibility_samples - prev_.update_visibility_samples;
  const u64 vis_ns =
      cur.update_visibility_total_ns - prev_.update_visibility_total_ns;
  s.update_visibility_mean_ns =
      s.update_visibility_samples == 0
          ? 0.0
          : static_cast<double>(vis_ns) /
                static_cast<double>(s.update_visibility_samples);

  // Idle ticks produce no row: the series records activity, and an
  // all-zero delta adds nothing to the sum invariant either way.
  const bool active = s.packets != 0 || s.batches != 0 ||
                      s.classifier_lookups != 0 || delta_count != 0 ||
                      s.update_visibility_samples != 0;
  if (active) {
    samples_.push_back(s);
  }
  prev_ = cur;
  t_prev_ns_ = now;
}

}  // namespace pclass::telemetry
