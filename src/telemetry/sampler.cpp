#include "telemetry/sampler.hpp"

#include <chrono>
#include <cmath>

namespace pclass::telemetry {

StatsSampler::StatsSampler(std::vector<WorkerTelemetry*> workers,
                           u64 interval_ms, usize keep_limit)
    : workers_(std::move(workers)),
      interval_ms_(interval_ms == 0 ? 1 : interval_ms),
      keep_limit_(keep_limit) {}

StatsSampler::~StatsSampler() { stop(); }

void StatsSampler::start() {
  {
    std::lock_guard<std::mutex> lk(data_mu_);
    t_start_ns_ = steady_now_ns();
    t_prev_ns_ = t_start_ns_;
  }
  {
    std::lock_guard<std::mutex> lk(stop_mu_);
    started_ = true;
  }
  thread_ = std::thread([this] { loop(); });
}

void StatsSampler::stop() {
  // stop_mu_ serializes concurrent stop() callers (the daemon's signal
  // path can race the engine's own teardown): exactly one caller joins
  // the thread and takes the final flush; later and concurrent callers
  // return after it completed.
  std::lock_guard<std::mutex> stop_lk(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  // stop() before start(): no thread, no t_start baseline — flushing
  // here would fabricate a row with garbage timestamps. Nothing ran, so
  // there is nothing to flush either.
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final flush: the callers stop() after the workers joined, so this
  // tick captures whatever landed after the last periodic one — the
  // step that makes sum(deltas) == end-of-run totals exact.
  tick();
}

void StatsSampler::loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stopping_) {
    cv_.wait_for(lk, std::chrono::milliseconds(interval_ms_),
                 [&] { return stopping_; });
    if (stopping_) break;
    lk.unlock();
    tick();
    lk.lock();
  }
}

u64 StatsSampler::subscribe(Subscriber fn) {
  std::lock_guard<std::mutex> lk(sub_mu_);
  const u64 token = next_sub_token_++;
  subscribers_.emplace_back(token, std::move(fn));
  return token;
}

void StatsSampler::unsubscribe(u64 token) {
  std::lock_guard<std::mutex> lk(sub_mu_);
  std::erase_if(subscribers_,
                [token](const auto& s) { return s.first == token; });
}

void StatsSampler::trace_capture_start(usize limit) {
  std::lock_guard<std::mutex> lk(data_mu_);
  capturing_ = true;
  capture_limit_ = limit;
  capture_truncated_ = 0;
  capture_.clear();
}

std::vector<TraceEvent> StatsSampler::trace_capture_stop(u64* truncated) {
  std::lock_guard<std::mutex> lk(data_mu_);
  capturing_ = false;
  if (truncated != nullptr) *truncated = capture_truncated_;
  capture_truncated_ = 0;
  return std::move(capture_);
}

void StatsSampler::tick() {
  const u64 now = steady_now_ns();
  LiveSnapshot cur{};
  for (const WorkerTelemetry* w : workers_) {
    if (w != nullptr) cur.add(w->live);
  }

  StatsSample s;
  bool active = false;
  {
    std::lock_guard<std::mutex> lk(data_mu_);
    const bool want_payload = keep_limit_ > 0 || capturing_;
    for (WorkerTelemetry* w : workers_) {
      if (w == nullptr) continue;
      if (want_payload) {
        w->ring.drain(&scratch_);
      } else {
        w->ring.drain(nullptr);  // collection off; drop accounting only
      }
    }
    if (!scratch_.empty()) {
      for (const TraceEvent& e : scratch_) {
        if (keep_limit_ > 0) {
          if (events_.size() < keep_limit_) {
            events_.push_back(e);
          } else {
            ++truncated_;
          }
        }
        if (capturing_) {
          if (capture_limit_ == 0 || capture_.size() < capture_limit_) {
            capture_.push_back(e);
          } else {
            ++capture_truncated_;
          }
        }
      }
      scratch_.clear();
    }

    s.t_ns = now - t_start_ns_;
    // Two ticks on the same steady-clock ns (a stop() flush right after
    // a periodic tick) must not divide by the zero interval below; the
    // deltas are all zero then too, so the row is dropped as idle.
    s.interval_ns = now - t_prev_ns_;
    s.packets = cur.packets - prev_.packets;
    s.batches = cur.batches - prev_.batches;
    s.cache_hits = cur.cache_hits - prev_.cache_hits;
    s.classifier_lookups = cur.classifier_lookups - prev_.classifier_lookups;
    s.probe_memo_hits = cur.probe_memo_hits - prev_.probe_memo_hits;
    s.memory_accesses = cur.memory_accesses - prev_.memory_accesses;
    s.mpps = s.interval_ns == 0
                 ? 0.0
                 : static_cast<double>(s.packets) * 1e3 /
                       static_cast<double>(s.interval_ns);
    std::array<u64, AtomicHistogram::kBuckets> delta_buckets;
    u64 delta_count = 0;
    for (usize i = 0; i < delta_buckets.size(); ++i) {
      delta_buckets[i] = cur.latency_buckets[i] - prev_.latency_buckets[i];
      delta_count += delta_buckets[i];
    }
    s.p50_cycles = static_cast<u64>(std::llround(
        dataplane::LatencyHistogram::percentile_from(delta_buckets,
                                                     delta_count, 50)));
    s.p99_cycles = static_cast<u64>(std::llround(
        dataplane::LatencyHistogram::percentile_from(delta_buckets,
                                                     delta_count, 99)));
    s.min_version = cur.min_version;
    s.max_version = cur.max_version;
    s.update_visibility_samples =
        cur.update_visibility_samples - prev_.update_visibility_samples;
    const u64 vis_ns =
        cur.update_visibility_total_ns - prev_.update_visibility_total_ns;
    s.update_visibility_mean_ns =
        s.update_visibility_samples == 0
            ? 0.0
            : static_cast<double>(vis_ns) /
                  static_cast<double>(s.update_visibility_samples);

    // Idle ticks produce no row: the series records activity, and an
    // all-zero delta adds nothing to the sum invariant either way.
    active = s.packets != 0 || s.batches != 0 ||
             s.classifier_lookups != 0 || delta_count != 0 ||
             s.update_visibility_samples != 0;
    if (active) {
      samples_.push_back(s);
    }
    prev_ = cur;
    t_prev_ns_ = now;
  }

  if (active) {
    // Push outside data_mu_ (a subscriber may call samples_snapshot()),
    // but under sub_mu_ so unsubscribe() can block until in-flight
    // callbacks return.
    std::lock_guard<std::mutex> lk(sub_mu_);
    for (const auto& [token, fn] : subscribers_) {
      fn(s);
    }
  }
}

}  // namespace pclass::telemetry
