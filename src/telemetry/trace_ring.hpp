/// \file trace_ring.hpp
/// A fixed-size per-worker SPSC ring of compact batch-span events, the
/// raw material behind the chrome://tracing export and the mid-run
/// drain path of the StatsSampler.
///
/// Design (hslog-style): the worker publishes one event per classified
/// batch with a handful of relaxed word stores plus two release stores
/// (per-slot sequence, ring head) — no locks, no RMW instructions, no
/// allocation — and *never blocks*: when the reader falls behind the
/// writer simply overwrites the oldest slot. Loss is observable, not
/// silent: the reader accounts every overwritten or torn slot in
/// dropped(), so `pushed() == drained + dropped()` always holds after a
/// final drain.
///
/// Concurrency contract: exactly one writer (the owning worker thread)
/// and at most one reader at a time (the sampler mid-run, the engine at
/// shutdown). Each slot carries a seqlock-style sequence (event index +
/// 1, stored with release order after the payload): the reader validates
/// it before and after copying the words, rejecting torn slots instead
/// of ever surfacing a mixed event.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "core/path_controller.hpp"

namespace pclass::telemetry {

/// Monotonic host-time reference shared by every telemetry record
/// (steady_clock, ns since its epoch — comparable within a process).
[[nodiscard]] inline u64 steady_now_ns() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One classified batch, as seen by the worker's ClassifierElement:
/// when it started, how long the span took on the host, what the batch
/// looked like and which execution path served it. Packs into
/// kWords x 64 bits so a ring slot is a handful of relaxed stores.
struct TraceEvent {
  u64 t_start_ns = 0;   ///< steady_now_ns() at batch start
  u64 duration_ns = 0;  ///< host ns for the classifier span
  u32 worker = 0;
  u32 packets = 0;        ///< batch size entering the classifier
  u32 lookups = 0;        ///< full 4-phase lookups (cache misses)
  u32 distinct_keys = 0;  ///< 0 = not computed (forced path policy)
  core::BatchPath path = core::BatchPath::kScalarLoop;
  u32 memo_hits = 0;       ///< probe-memo hits in this batch
  u32 memo_conflicts = 0;  ///< conflict evictions in this batch
  u64 snapshot_version = 0;

  static constexpr usize kWords = 5;

  [[nodiscard]] std::array<u64, kWords> pack() const {
    std::array<u64, kWords> w{};
    w[0] = t_start_ns;
    w[1] = duration_ns;
    w[2] = (u64{worker} & 0xFFFF) | ((u64{packets} & 0xFFFF) << 16) |
           ((u64{lookups} & 0xFFFF) << 32) |
           ((u64{distinct_keys} & 0xFFFF) << 48);
    w[3] = (u64{memo_hits} & 0xFFFFFFFF) |
           ((u64{memo_conflicts} & 0xFFFFFF) << 32) |
           (u64{static_cast<u8>(path)} << 56);
    w[4] = snapshot_version;
    return w;
  }

  [[nodiscard]] static TraceEvent unpack(const std::array<u64, kWords>& w) {
    TraceEvent e;
    e.t_start_ns = w[0];
    e.duration_ns = w[1];
    e.worker = static_cast<u32>(w[2] & 0xFFFF);
    e.packets = static_cast<u32>((w[2] >> 16) & 0xFFFF);
    e.lookups = static_cast<u32>((w[2] >> 32) & 0xFFFF);
    e.distinct_keys = static_cast<u32>((w[2] >> 48) & 0xFFFF);
    e.memo_hits = static_cast<u32>(w[3] & 0xFFFFFFFF);
    e.memo_conflicts = static_cast<u32>((w[3] >> 32) & 0xFFFFFF);
    e.path = static_cast<core::BatchPath>((w[3] >> 56) & 0xFF);
    e.snapshot_version = w[4];
    return e;
  }
};

/// The SPSC overwrite-oldest ring described in the file header.
class TraceRing {
 public:
  static constexpr usize kDefaultCapacity = 4096;

  /// \p capacity is rounded up to a power of two (>= 2).
  explicit TraceRing(usize capacity = kDefaultCapacity) {
    const usize cap = std::bit_ceil(std::max<usize>(capacity, 2));
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
  }

  /// Writer side: publish one event. Wait-free; overwrites the oldest
  /// unread slot when the ring is full.
  void push(const TraceEvent& ev) {
    const u64 idx = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[idx & mask_];
    // Invalidate first so a reader mid-copy of the old occupant fails
    // its recheck instead of stitching old and new words together.
    s.seq.store(0, std::memory_order_relaxed);
    const std::array<u64, TraceEvent::kWords> w = ev.pack();
    for (usize k = 0; k < TraceEvent::kWords; ++k) {
      s.words[k].store(w[k], std::memory_order_relaxed);
    }
    s.seq.store(idx + 1, std::memory_order_release);
    head_.store(idx + 1, std::memory_order_release);
  }

  /// Reader side: consume everything published since the last drain.
  /// Appends to \p out (nullptr = count-and-discard); returns the number
  /// of events consumed. Overwritten and torn slots are added to
  /// dropped(). At most one concurrent caller.
  usize drain(std::vector<TraceEvent>* out) {
    const u64 head = head_.load(std::memory_order_acquire);
    u64 from = cursor_;
    const usize cap = mask_ + 1;
    if (head - from > cap) {
      // The writer lapped us: everything below head - cap is gone.
      dropped_.fetch_add(head - from - cap, std::memory_order_relaxed);
      from = head - cap;
    }
    usize n = 0;
    for (u64 idx = from; idx < head; ++idx) {
      Slot& s = slots_[idx & mask_];
      if (s.seq.load(std::memory_order_acquire) != idx + 1) {
        // Already overwritten (or mid-overwrite) by a lapping writer.
        dropped_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      std::array<u64, TraceEvent::kWords> w;
      for (usize k = 0; k < TraceEvent::kWords; ++k) {
        w[k] = s.words[k].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) != idx + 1) {
        dropped_.fetch_add(1, std::memory_order_relaxed);  // torn copy
        continue;
      }
      if (out != nullptr) {
        out->push_back(TraceEvent::unpack(w));
      }
      ++n;
    }
    cursor_ = head;
    return n;
  }

  /// Total events ever pushed (writer-side monotonic counter).
  [[nodiscard]] u64 pushed() const {
    return head_.load(std::memory_order_acquire);
  }
  /// Events lost to overwrite or torn reads, as accounted by drain().
  [[nodiscard]] u64 dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] usize capacity() const { return mask_ + 1; }

 private:
  struct Slot {
    std::atomic<u64> seq{0};  ///< event index + 1; 0 = empty/in-flight
    std::array<std::atomic<u64>, TraceEvent::kWords> words{};
  };

  std::unique_ptr<Slot[]> slots_;
  usize mask_ = 0;
  std::atomic<u64> head_{0};  ///< next event index (== pushed count)
  u64 cursor_ = 0;            ///< reader-owned resume position
  std::atomic<u64> dropped_{0};
};

}  // namespace pclass::telemetry
