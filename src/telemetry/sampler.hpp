/// \file sampler.hpp
/// Background stats sampler: every interval it snapshots all workers'
/// live counters (relaxed reads, workers never stop), differences the
/// engine-wide totals against the previous tick, and appends one
/// StatsSample to an in-memory time series — the `timeseries` array of
/// the scenario report. It also drains the workers' trace rings each
/// tick, so rings sized for one interval's batches lose nothing.
///
/// stop() takes a mandatory final flush tick after the workers joined,
/// which is what guarantees the headline invariant: the sum of interval
/// deltas equals the end-of-run totals, exactly.
#pragma once

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "telemetry/live_stats.hpp"
#include "telemetry/sample.hpp"
#include "telemetry/trace_ring.hpp"

namespace pclass::telemetry {

/// The background thread described in the file header. Lifetime: the
/// Engine constructs it in start() (interval > 0), stop()s it after the
/// workers joined, then takes the series and drained events.
class StatsSampler {
 public:
  /// \p workers are borrowed (must outlive the sampler); \p keep_limit
  /// is the max number of drained TraceEvents retained for the export
  /// (0 = drain-and-discard, which still maintains the rings' drop
  /// accounting). Events drained past the limit are counted in
  /// truncated(), not silently lost.
  StatsSampler(std::vector<WorkerTelemetry*> workers, u64 interval_ms,
               usize keep_limit);
  ~StatsSampler();

  void start();
  /// Join the thread and take the final flush tick. Idempotent.
  void stop();

  /// Valid after stop().
  [[nodiscard]] std::vector<StatsSample> take_samples() {
    return std::move(samples_);
  }
  [[nodiscard]] std::vector<TraceEvent> take_events() {
    return std::move(events_);
  }
  /// Events successfully drained but not retained (keep_limit reached).
  [[nodiscard]] u64 truncated() const { return truncated_; }

 private:
  void loop();
  void tick();

  std::vector<WorkerTelemetry*> workers_;
  u64 interval_ms_;
  usize keep_limit_;
  u64 truncated_ = 0;

  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;

  u64 t_start_ns_ = 0;
  u64 t_prev_ns_ = 0;
  LiveSnapshot prev_{};
  std::vector<StatsSample> samples_;
  std::vector<TraceEvent> events_;
};

}  // namespace pclass::telemetry
