/// \file sampler.hpp
/// Background stats sampler: every interval it snapshots all workers'
/// live counters (relaxed reads, workers never stop), differences the
/// engine-wide totals against the previous tick, and appends one
/// StatsSample to an in-memory time series — the `timeseries` array of
/// the scenario report. It also drains the workers' trace rings each
/// tick, so rings sized for one interval's batches lose nothing.
///
/// stop() takes a mandatory final flush tick after the workers joined,
/// which is what guarantees the headline invariant: the sum of interval
/// deltas equals the end-of-run totals, exactly. stop() is idempotent
/// and safe against double-stop / stop-before-start / concurrent
/// callers — the daemon stops it from a signal-driven shutdown path
/// that can race the engine's own teardown.
///
/// Live-introspection surface (PR 7): subscribers receive every
/// appended row (the `subscribe stats` NDJSON stream), readers can copy
/// the series mid-run (`read timeseries` without stopping anything),
/// and an on-demand trace capture tees drained ring events into a side
/// buffer (`trace start/stop/dump`) without disturbing the end-of-run
/// retention accounting.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "telemetry/live_stats.hpp"
#include "telemetry/sample.hpp"
#include "telemetry/trace_ring.hpp"

namespace pclass::telemetry {

/// The background thread described in the file header. Lifetime: the
/// Engine constructs it in start() (interval > 0), stop()s it after the
/// workers joined, then takes the series and drained events.
class StatsSampler {
 public:
  /// Callback invoked (from the sampler thread, or the stop() caller
  /// for the final flush row) once per *active* appended row. Must not
  /// block: a slow subscriber stalls every other subscriber and the
  /// next tick. The control plane's socket push is non-blocking
  /// (drop-on-full) for exactly this reason.
  using Subscriber = std::function<void(const StatsSample&)>;

  /// \p workers are borrowed (must outlive the sampler); \p keep_limit
  /// is the max number of drained TraceEvents retained for the export
  /// (0 = drain-and-discard, which still maintains the rings' drop
  /// accounting). Events drained past the limit are counted in
  /// truncated(), not silently lost.
  StatsSampler(std::vector<WorkerTelemetry*> workers, u64 interval_ms,
               usize keep_limit);
  ~StatsSampler();

  void start();
  /// Join the thread and take the final flush tick. Idempotent, safe
  /// before start() (no tick — there is nothing to flush) and under
  /// concurrent callers (serialized; exactly one takes the flush).
  void stop();

  [[nodiscard]] u64 interval_ms() const { return interval_ms_; }

  /// Valid after stop().
  [[nodiscard]] std::vector<StatsSample> take_samples() {
    std::lock_guard<std::mutex> lk(data_mu_);
    return std::move(samples_);
  }
  [[nodiscard]] std::vector<TraceEvent> take_events() {
    std::lock_guard<std::mutex> lk(data_mu_);
    return std::move(events_);
  }
  /// Events successfully drained but not retained (keep_limit reached).
  [[nodiscard]] u64 truncated() const {
    std::lock_guard<std::mutex> lk(data_mu_);
    return truncated_;
  }

  // ---- live introspection (any thread, mid-run) ----

  /// Copy of the series so far — the live `read timeseries` handler.
  [[nodiscard]] std::vector<StatsSample> samples_snapshot() const {
    std::lock_guard<std::mutex> lk(data_mu_);
    return samples_;
  }

  /// Register \p fn for every subsequently appended row (including the
  /// final flush row). Returns a token for unsubscribe().
  [[nodiscard]] u64 subscribe(Subscriber fn);

  /// Remove a subscriber. Blocks until any in-flight callback to it has
  /// returned, so the callee's captures may be destroyed on return.
  void unsubscribe(u64 token);

  /// Start teeing drained ring events into a capture buffer (at most
  /// \p limit events; 0 = unlimited). Restarts discard the previous
  /// capture. The end-of-run keep/truncate accounting is unaffected.
  void trace_capture_start(usize limit);

  /// Stop capturing and take the buffer. \p truncated (optional)
  /// receives the number of events that arrived past the limit.
  [[nodiscard]] std::vector<TraceEvent> trace_capture_stop(
      u64* truncated = nullptr);

  [[nodiscard]] bool trace_capturing() const {
    std::lock_guard<std::mutex> lk(data_mu_);
    return capturing_;
  }

 private:
  void loop();
  void tick();

  std::vector<WorkerTelemetry*> workers_;
  u64 interval_ms_;
  usize keep_limit_;

  std::thread thread_;
  std::mutex mu_;  ///< cv wait state only
  std::condition_variable cv_;
  bool stopping_ = false;

  std::mutex stop_mu_;  ///< serializes stop(); start()/stop() lifecycle
  bool started_ = false;
  bool stopped_ = false;

  /// Guards every field below (the series, trace buffers and the
  /// differencing state) — tick() runs on the sampler thread while
  /// snapshot/capture calls arrive from control-plane handlers.
  mutable std::mutex data_mu_;
  u64 truncated_ = 0;
  u64 t_start_ns_ = 0;
  u64 t_prev_ns_ = 0;
  LiveSnapshot prev_{};
  std::vector<StatsSample> samples_;
  std::vector<TraceEvent> events_;
  std::vector<TraceEvent> scratch_;  ///< per-tick drain staging
  bool capturing_ = false;
  usize capture_limit_ = 0;
  u64 capture_truncated_ = 0;
  std::vector<TraceEvent> capture_;

  /// Guards the subscriber list; held across callback invocation so
  /// unsubscribe() can guarantee no callback outlives it.
  std::mutex sub_mu_;
  u64 next_sub_token_ = 1;
  std::vector<std::pair<u64, Subscriber>> subscribers_;
};

}  // namespace pclass::telemetry
