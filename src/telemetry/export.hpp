/// \file export.hpp
/// Telemetry file exporters: a chrome://tracing JSON writer (one
/// process per scenario/run, one track per worker, spans from TraceRing
/// events — load the file at chrome://tracing or ui.perfetto.dev) and a
/// small Prometheus text-exposition helper the CLIs use for
/// --metrics-out dumps.
#pragma once

#include <iosfwd>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/trace_ring.hpp"

namespace pclass::telemetry {

/// One traced process (a scenario or a CLI run) and its batch spans.
struct TraceProcess {
  std::string name;
  std::vector<TraceEvent> events;
};

/// Write the chrome://tracing "JSON Object Format": process/thread name
/// metadata plus one "X" (complete) event per batch span, ts/dur in
/// microseconds rebased to the earliest event across all processes.
void write_chrome_trace(std::ostream& os,
                        std::span<const TraceProcess> processes);

/// Prometheus text exposition writer: emits `# HELP`/`# TYPE` once per
/// metric name (first use wins) and one sample line per call. Label
/// values are escaped per the exposition format.
class MetricsWriter {
 public:
  struct Label {
    std::string_view key;
    std::string_view value;
  };

  explicit MetricsWriter(std::ostream& os) : os_(os) {}

  void counter(std::string_view name, std::string_view help,
               std::span<const Label> labels, double value) {
    sample(name, "counter", help, labels, value);
  }
  void gauge(std::string_view name, std::string_view help,
             std::span<const Label> labels, double value) {
    sample(name, "gauge", help, labels, value);
  }

 private:
  void sample(std::string_view name, std::string_view type,
              std::string_view help, std::span<const Label> labels,
              double value);

  std::ostream& os_;
  std::set<std::string, std::less<>> declared_;
};

}  // namespace pclass::telemetry
