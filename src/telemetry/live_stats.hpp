/// \file live_stats.hpp
/// Per-worker live counters: the mid-run-readable mirror of the
/// end-of-run WorkerReport fields.
///
/// Ownership/ordering model: every counter is a single-writer relaxed
/// atomic — the owning worker publishes its running totals once per
/// batch with `load(relaxed) + store(relaxed)` (which compiles to a
/// plain add, no lock-prefixed RMW), and the StatsSampler reads them
/// relaxed from its own thread. Because the worker publishes *totals*
/// (not deltas), the sampler's interval deltas always sum exactly to
/// the end-of-run totals — the invariant the telemetry tests and the CI
/// gate assert. Each WorkerTelemetry is cache-line aligned so two
/// workers never share a line.
#pragma once

#include <array>
#include <atomic>

#include "dataplane/stats.hpp"
#include "telemetry/trace_ring.hpp"

namespace pclass::telemetry {

/// Relaxed read/modify helpers for the single-writer counters.
[[nodiscard]] inline u64 counter_load(const std::atomic<u64>& a) {
  return a.load(std::memory_order_relaxed);
}
inline void counter_store(std::atomic<u64>& a, u64 v) {
  a.store(v, std::memory_order_relaxed);
}
inline void counter_add(std::atomic<u64>& a, u64 d) {
  a.store(a.load(std::memory_order_relaxed) + d, std::memory_order_relaxed);
}

/// Mid-run-readable latency histogram: same bucketing as the
/// end-of-run dataplane::LatencyHistogram, but each bucket is a
/// single-writer relaxed atomic so the sampler can difference interval
/// snapshots for live p50/p99.
class AtomicHistogram {
 public:
  static constexpr usize kBuckets = dataplane::LatencyHistogram::kBuckets;

  void record(u64 v) {
    counter_add(buckets_[dataplane::LatencyHistogram::bucket_of(v)], 1);
  }

  [[nodiscard]] std::array<u64, kBuckets> snapshot() const {
    std::array<u64, kBuckets> out;
    for (usize i = 0; i < kBuckets; ++i) out[i] = counter_load(buckets_[i]);
    return out;
  }

 private:
  std::array<std::atomic<u64>, kBuckets> buckets_{};
};

/// One worker's live counter block. Fields mirror WorkerReport; all are
/// running totals published by the worker's pipeline elements.
struct WorkerLive {
  std::atomic<u64> packets{0};
  std::atomic<u64> batches{0};
  std::atomic<u64> matched{0};
  std::atomic<u64> dropped{0};
  std::atomic<u64> parse_errors{0};
  std::atomic<u64> cache_hits{0};
  std::atomic<u64> cache_misses{0};
  std::atomic<u64> classifier_lookups{0};
  std::atomic<u64> memory_accesses{0};
  std::atomic<u64> probe_memo_hits{0};
  std::atomic<u64> probe_memo_invalidations{0};
  std::atomic<u64> probe_memo_conflict_evictions{0};
  std::atomic<u64> path_scalar_loop_batches{0};
  std::atomic<u64> path_phase2_batches{0};
  std::atomic<u64> path_phase2_memo_batches{0};
  /// Latest rule-program version this worker classified against
  /// (0 until the first batch).
  std::atomic<u64> snapshot_version{0};
  /// Update-visibility latency: each time the worker observes a higher
  /// published version than before, it charges `observe_time -
  /// publish_time(version)` here (see PublishClock). samples/total/max
  /// make both a mean and a worst case recoverable.
  std::atomic<u64> update_visibility_samples{0};
  std::atomic<u64> update_visibility_total_ns{0};
  std::atomic<u64> update_visibility_max_ns{0};
  AtomicHistogram latency;
};

/// Coherent-enough copy of one worker's WorkerLive (or a sum over
/// workers), taken with relaxed loads. Used by the sampler for interval
/// differencing.
struct LiveSnapshot {
  u64 packets = 0;
  u64 batches = 0;
  u64 cache_hits = 0;
  u64 classifier_lookups = 0;
  u64 memory_accesses = 0;
  u64 probe_memo_hits = 0;
  u64 update_visibility_samples = 0;
  u64 update_visibility_total_ns = 0;
  u64 min_version = 0;  ///< lowest nonzero snapshot_version (0 = none)
  u64 max_version = 0;
  std::array<u64, AtomicHistogram::kBuckets> latency_buckets{};

  /// Accumulate one worker's live block into this (sum) snapshot.
  void add(const WorkerLive& w) {
    packets += counter_load(w.packets);
    batches += counter_load(w.batches);
    cache_hits += counter_load(w.cache_hits);
    classifier_lookups += counter_load(w.classifier_lookups);
    memory_accesses += counter_load(w.memory_accesses);
    probe_memo_hits += counter_load(w.probe_memo_hits);
    update_visibility_samples += counter_load(w.update_visibility_samples);
    update_visibility_total_ns += counter_load(w.update_visibility_total_ns);
    const u64 v = counter_load(w.snapshot_version);
    if (v != 0) {
      min_version = min_version == 0 ? v : std::min(min_version, v);
      max_version = std::max(max_version, v);
    }
    const auto b = w.latency.snapshot();
    for (usize i = 0; i < b.size(); ++i) latency_buckets[i] += b[i];
  }
};

/// Everything telemetry-related one worker owns: its live counter block
/// and its trace ring. Cache-line aligned; allocated per worker by the
/// Engine, handed to the pipeline elements as a raw pointer (nullptr =
/// telemetry off, the overhead-gate baseline).
struct alignas(64) WorkerTelemetry {
  explicit WorkerTelemetry(u32 worker_id,
                           usize ring_capacity = TraceRing::kDefaultCapacity)
      : worker(worker_id), ring(ring_capacity) {}

  u32 worker;
  WorkerLive live;
  TraceRing ring;
};

}  // namespace pclass::telemetry
