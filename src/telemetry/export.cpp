#include "telemetry/export.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <ostream>

#include "workload/json_writer.hpp"

namespace pclass::telemetry {

namespace {

/// Microseconds with ns resolution kept (chrome accepts fractional ts).
double to_us(u64 ns) { return static_cast<double>(ns) / 1e3; }

}  // namespace

void write_chrome_trace(std::ostream& os,
                        std::span<const TraceProcess> processes) {
  // Rebase to the earliest span so timestamps stay small and the
  // viewer opens at t=0.
  u64 base = std::numeric_limits<u64>::max();
  for (const TraceProcess& p : processes) {
    for (const TraceEvent& e : p.events) {
      base = std::min(base, e.t_start_ns);
    }
  }
  if (base == std::numeric_limits<u64>::max()) base = 0;

  workload::JsonWriter j(os);
  j.begin_object();
  j.key("displayTimeUnit").value("ms");
  j.key("traceEvents").begin_array();
  for (usize pid = 0; pid < processes.size(); ++pid) {
    const TraceProcess& p = processes[pid];
    j.begin_object();
    j.key("name").value("process_name");
    j.key("ph").value("M");
    j.key("pid").value(pid);
    j.key("args").begin_object().key("name").value(p.name).end_object();
    j.end_object();
    // One thread-name metadata row per worker that produced events.
    std::set<u32> workers;
    for (const TraceEvent& e : p.events) workers.insert(e.worker);
    for (const u32 w : workers) {
      j.begin_object();
      j.key("name").value("thread_name");
      j.key("ph").value("M");
      j.key("pid").value(pid);
      j.key("tid").value(w);
      j.key("args")
          .begin_object()
          .key("name")
          .value("worker" + std::to_string(w))
          .end_object();
      j.end_object();
    }
    for (const TraceEvent& e : p.events) {
      j.begin_object();
      j.key("name").value("batch");
      j.key("ph").value("X");
      j.key("pid").value(pid);
      j.key("tid").value(e.worker);
      j.key("ts").value(to_us(e.t_start_ns - base));
      j.key("dur").value(to_us(e.duration_ns));
      j.key("args").begin_object();
      j.key("packets").value(e.packets);
      j.key("lookups").value(e.lookups);
      j.key("distinct_keys").value(e.distinct_keys);
      j.key("path").value(std::string(core::to_string(e.path)));
      j.key("memo_hits").value(e.memo_hits);
      j.key("memo_conflicts").value(e.memo_conflicts);
      j.key("snapshot_version").value(e.snapshot_version);
      j.end_object();
      j.end_object();
    }
  }
  j.end_array();
  j.end_object();
  os << "\n";
}

void MetricsWriter::sample(std::string_view name, std::string_view type,
                           std::string_view help,
                           std::span<const Label> labels, double value) {
  if (declared_.find(name) == declared_.end()) {
    os_ << "# HELP " << name << " " << help << "\n";
    os_ << "# TYPE " << name << " " << type << "\n";
    declared_.emplace(name);
  }
  os_ << name;
  if (!labels.empty()) {
    os_ << "{";
    bool first = true;
    for (const Label& l : labels) {
      if (!first) os_ << ",";
      first = false;
      os_ << l.key << "=\"";
      for (const char c : l.value) {
        switch (c) {
          case '\\': os_ << "\\\\"; break;
          case '"': os_ << "\\\""; break;
          case '\n': os_ << "\\n"; break;
          default: os_ << c;
        }
      }
      os_ << "\"";
    }
    os_ << "}";
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  os_ << " " << buf << "\n";
}

}  // namespace pclass::telemetry
