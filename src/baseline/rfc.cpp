#include "baseline/rfc.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"

namespace pclass::baseline {

namespace {

/// FNV-ish hash over bitmap words (class interning is the hot path of
/// the RFC build).
struct VecHash {
  usize operator()(const std::vector<u64>& v) const {
    u64 h = 0xCBF29CE484222325ull;
    for (u64 w : v) {
      h = mix64(h ^ w);
    }
    return static_cast<usize>(h);
  }
};

/// Per-chunk projection of one rule as an inclusive range.
std::pair<u32, u32> project(const ruleset::Rule& r, usize chunk) {
  const auto seg_range = [](const ruleset::SegmentPrefix& p) {
    const u32 lo = p.value;
    const u32 hi = p.value | static_cast<u32>(mask_low(16u - p.length));
    return std::pair<u32, u32>{lo, hi};
  };
  switch (chunk) {
    case 0: return seg_range(r.src_ip.hi_segment());
    case 1: return seg_range(r.src_ip.lo_segment());
    case 2: return seg_range(r.dst_ip.hi_segment());
    case 3: return seg_range(r.dst_ip.lo_segment());
    case 4: return {r.src_port.lo, r.src_port.hi};
    case 5: return {r.dst_port.lo, r.dst_port.hi};
    case 6:
      return r.proto.wildcard ? std::pair<u32, u32>{0, 255}
                              : std::pair<u32, u32>{r.proto.value,
                                                    r.proto.value};
    default: throw InternalError("RFC: bad chunk");
  }
}

void bitmap_set(std::vector<u64>& bm, usize bit) {
  bm[bit / 64] |= u64{1} << (bit % 64);
}

i64 bitmap_first(const std::vector<u64>& bm) {
  for (usize w = 0; w < bm.size(); ++w) {
    if (bm[w] != 0) {
      return static_cast<i64>(w * 64 +
                              static_cast<usize>(std::countr_zero(bm[w])));
    }
  }
  return -1;
}

}  // namespace

Rfc::Phase0Table Rfc::build_phase0(
    const std::vector<std::pair<u32, u32>>& rule_ranges, unsigned width,
    std::vector<Bitmap>& out_class_bitmaps) const {
  const usize domain = usize{1} << width;
  const usize words = (rules_.size() + 63) / 64;

  // Elementary intervals via boundary sweep.
  std::vector<u32> points = {0};
  for (const auto& [lo, hi] : rule_ranges) {
    points.push_back(lo);
    if (u64{hi} + 1 < domain) {
      points.push_back(hi + 1);
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  Phase0Table t;
  t.width = width;
  t.classes.assign(domain, 0);
  std::unordered_map<Bitmap, u32, VecHash> class_of;

  for (usize i = 0; i < points.size(); ++i) {
    const u32 start = points[i];
    const u32 end = i + 1 < points.size()
                        ? points[i + 1] - 1
                        : static_cast<u32>(domain - 1);
    Bitmap bm(words, 0);
    for (usize ri = 0; ri < rule_ranges.size(); ++ri) {
      if (rule_ranges[ri].first <= start && rule_ranges[ri].second >= start) {
        bitmap_set(bm, ri);
      }
    }
    const auto [it, inserted] =
        class_of.emplace(bm, static_cast<u32>(class_of.size()));
    if (inserted) {
      out_class_bitmaps.push_back(bm);
    }
    for (u64 v = start; v <= end; ++v) {
      t.classes[static_cast<usize>(v)] = it->second;
    }
  }
  t.class_count = class_of.size();
  return t;
}

Rfc::ProductTable Rfc::combine(const std::vector<Bitmap>& a,
                               const std::vector<Bitmap>& b,
                               std::vector<Bitmap>& out) const {
  ProductTable t;
  t.a_count = a.size();
  t.b_count = b.size();
  if (a.size() * b.size() > max_table_) {
    throw CapacityError("RFC: product table of " +
                        std::to_string(a.size() * b.size()) +
                        " entries exceeds the configured bound");
  }
  t.classes.assign(a.size() * b.size(), 0);
  std::unordered_map<Bitmap, u32, VecHash> class_of;
  Bitmap tmp;
  for (usize i = 0; i < a.size(); ++i) {
    for (usize j = 0; j < b.size(); ++j) {
      tmp.assign(a[i].size(), 0);
      for (usize w = 0; w < tmp.size(); ++w) {
        tmp[w] = a[i][w] & b[j][w];
      }
      const auto [it, inserted] =
          class_of.emplace(tmp, static_cast<u32>(class_of.size()));
      if (inserted) {
        out.push_back(tmp);
      }
      t.classes[i * b.size() + j] = it->second;
    }
  }
  t.class_count = class_of.size();
  return t;
}

Rfc::Rfc(const ruleset::RuleSet& rules, usize max_table)
    : max_table_(max_table) {
  rules_.assign(rules.begin(), rules.end());
  std::stable_sort(rules_.begin(), rules_.end(),
                   [](const ruleset::Rule& a, const ruleset::Rule& b) {
                     if (a.priority != b.priority) {
                       return a.priority < b.priority;
                     }
                     return a.id < b.id;
                   });

  // Phase 0: seven chunk tables.
  std::vector<std::vector<Bitmap>> chunk_classes(7);
  p0_.reserve(7);
  for (usize c = 0; c < 7; ++c) {
    std::vector<std::pair<u32, u32>> ranges;
    ranges.reserve(rules_.size());
    for (const ruleset::Rule& r : rules_) {
      ranges.push_back(project(r, c));
    }
    p0_.push_back(
        build_phase0(ranges, c == 6 ? 8 : 16, chunk_classes[c]));
  }

  // Reduction tree.
  std::vector<Bitmap> src_cls, dst_cls, port_cls, ip_cls, pp_cls, final_cls;
  p1_src_ = combine(chunk_classes[0], chunk_classes[1], src_cls);
  p1_dst_ = combine(chunk_classes[2], chunk_classes[3], dst_cls);
  p1_port_ = combine(chunk_classes[4], chunk_classes[5], port_cls);
  p2_ip_ = combine(src_cls, dst_cls, ip_cls);
  p2_pp_ = combine(port_cls, chunk_classes[6], pp_cls);
  p3_ = combine(ip_cls, pp_cls, final_cls);

  final_rule_.reserve(final_cls.size());
  for (const Bitmap& bm : final_cls) {
    final_rule_.push_back(bitmap_first(bm));
  }
}

const ruleset::Rule* Rfc::classify(const net::FiveTuple& h,
                                   LookupCost* cost) const {
  if (cost != nullptr) {
    cost->memory_accesses += kAccessesPerLookup;
  }
  const u32 c0 = p0_[0].classes[ip_hi16(h.src_ip)];
  const u32 c1 = p0_[1].classes[ip_lo16(h.src_ip)];
  const u32 c2 = p0_[2].classes[ip_hi16(h.dst_ip)];
  const u32 c3 = p0_[3].classes[ip_lo16(h.dst_ip)];
  const u32 c4 = p0_[4].classes[h.src_port];
  const u32 c5 = p0_[5].classes[h.dst_port];
  const u32 c6 = p0_[6].classes[h.protocol];

  const u32 s = p1_src_.classes[usize{c0} * p1_src_.b_count + c1];
  const u32 d = p1_dst_.classes[usize{c2} * p1_dst_.b_count + c3];
  const u32 p = p1_port_.classes[usize{c4} * p1_port_.b_count + c5];
  const u32 ip = p2_ip_.classes[usize{s} * p2_ip_.b_count + d];
  const u32 pp = p2_pp_.classes[usize{p} * p2_pp_.b_count + c6];
  const u32 fin = p3_.classes[usize{ip} * p3_.b_count + pp];

  const i64 ri = final_rule_[fin];
  return ri < 0 ? nullptr : &rules_[static_cast<usize>(ri)];
}

u64 Rfc::memory_bits() const {
  auto entry_bits = [](usize class_count) {
    return u64{std::max(1u, ceil_log2(u64{class_count}))};
  };
  u64 bits = 0;
  for (const Phase0Table& t : p0_) {
    bits += u64{t.classes.size()} * entry_bits(t.class_count);
  }
  for (const ProductTable* t :
       {&p1_src_, &p1_dst_, &p1_port_, &p2_ip_, &p2_pp_}) {
    bits += u64{t->classes.size()} * entry_bits(t->class_count);
  }
  // Final table stores rule ids directly.
  bits += u64{p3_.classes.size()} *
          std::max(1u, ceil_log2(u64{rules_.size()} + 1));
  return bits;
}

}  // namespace pclass::baseline
