/// \file rfc.hpp
/// Recursive Flow Classification [Gupta & McKeown, SIGCOMM 1999] — the
/// fast-but-memory-hungry baseline of Table I. The header is split into
/// 7 chunks (four 16-bit IP segments, two ports, protocol); each chunk
/// indexes a preprocessed table mapping the chunk value to an
/// equivalence-class id, and a reduction tree of cross-product tables
/// combines class ids until one table yields the HPMR:
///
///   P0: c0..c6 (7 direct-indexed tables)
///   P1: (c0,c1) -> srcIP class   (c2,c3) -> dstIP class  (c4,c5) -> ports
///   P2: (srcIP,dstIP)            (ports, c6)
///   P3: (P2a, P2b) -> rule
///
/// Lookup cost is a fixed 13 memory reads; the price is the product
/// tables, whose size explodes with rule diversity — exactly the trade
/// Table I shows (fewest accesses after DCFL, by far the most memory).
#pragma once

#include <memory>
#include <vector>

#include "baseline/baseline.hpp"

namespace pclass::baseline {

class Rfc final : public Baseline {
 public:
  /// \throws CapacityError if a product table would exceed \p max_table
  ///         entries (guards against pathological rule sets).
  explicit Rfc(const ruleset::RuleSet& rules, usize max_table = 1u << 26);

  [[nodiscard]] const ruleset::Rule* classify(const net::FiveTuple& h,
                                              LookupCost* cost) const override;
  [[nodiscard]] u64 memory_bits() const override;
  [[nodiscard]] const std::string& name() const override { return name_; }

  /// Fixed access count of the reduction tree (7 + 3 + 2 + 1).
  static constexpr u64 kAccessesPerLookup = 13;

 private:
  /// Rule bitmap (one bit per rule, priority order).
  using Bitmap = std::vector<u64>;

  struct Phase0Table {
    std::vector<u32> classes;   ///< 2^width entries -> class id
    usize class_count = 0;
    unsigned width = 16;
  };
  struct ProductTable {
    std::vector<u32> classes;  ///< a_count * b_count entries -> class id
    usize a_count = 0;
    usize b_count = 0;
    usize class_count = 0;
  };

  [[nodiscard]] Phase0Table build_phase0(
      const std::vector<std::pair<u32, u32>>& rule_ranges, unsigned width,
      std::vector<Bitmap>& out_class_bitmaps) const;
  [[nodiscard]] ProductTable combine(const std::vector<Bitmap>& a,
                                     const std::vector<Bitmap>& b,
                                     std::vector<Bitmap>& out) const;

  std::string name_ = "RFC";
  usize max_table_;
  std::vector<ruleset::Rule> rules_;  ///< priority order

  std::vector<Phase0Table> p0_;  ///< 7 chunk tables
  ProductTable p1_src_, p1_dst_, p1_port_;
  ProductTable p2_ip_, p2_pp_;
  ProductTable p3_;
  std::vector<i64> final_rule_;  ///< P3 class -> rule index (-1 = miss)
};

}  // namespace pclass::baseline
