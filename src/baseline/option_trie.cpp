#include "baseline/option_trie.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace pclass::baseline {

OptionTrie::OptionTrie(const ruleset::RuleSet& rules, OptionConfig cfg)
    : cfg_(std::move(cfg)) {
  rules_.assign(rules.begin(), rules.end());
  std::stable_sort(rules_.begin(), rules_.end(),
                   [](const ruleset::Rule& a, const ruleset::Rule& b) {
                     if (a.priority != b.priority) {
                       return a.priority < b.priority;
                     }
                     return a.id < b.id;
                   });

  src_trie_ = std::make_unique<SwTrie>(cfg_.ip_strides, 32);
  dst_trie_ = std::make_unique<SwTrie>(cfg_.ip_strides, 32);
  sport_trie_ = std::make_unique<SwTrie>(cfg_.port_strides, 16);
  dport_trie_ = std::make_unique<SwTrie>(cfg_.port_strides, 16);

  std::map<std::pair<u32, u8>, u16> src_of, dst_of;
  std::map<std::pair<u16, u16>, u16> sport_of, dport_of;
  std::map<std::pair<u8, bool>, u16> proto_of;

  auto label_ip = [](auto& map, const ruleset::IpPrefix& p, SwTrie& trie) {
    const auto [it, inserted] =
        map.emplace(std::make_pair(p.value, p.length),
                    static_cast<u16>(map.size()));
    if (inserted) {
      trie.insert(p.value, p.length, it->second);
    }
    return it->second;
  };
  auto label_range = [](auto& map, const ruleset::PortRange& r,
                        SwTrie& trie) {
    const auto [it, inserted] = map.emplace(std::make_pair(r.lo, r.hi),
                                            static_cast<u16>(map.size()));
    if (inserted) {
      // Ranges enter the segment trie as their prefix expansion, all
      // carrying the same label.
      for (const auto& [value, len] : range_to_prefixes(r.lo, r.hi, 16)) {
        trie.insert(value, len, it->second);
      }
    }
    return it->second;
  };

  for (u32 ri = 0; ri < rules_.size(); ++ri) {
    const ruleset::Rule& r = rules_[ri];
    const u16 l1 = label_ip(src_of, r.src_ip, *src_trie_);
    const u16 l2 = label_ip(dst_of, r.dst_ip, *dst_trie_);
    const u16 l3 = label_range(sport_of, r.src_port, *sport_trie_);
    const u16 l4 = label_range(dport_of, r.dst_port, *dport_trie_);
    const auto [pit, pin] = proto_of.emplace(
        std::make_pair(r.proto.value, r.proto.wildcard),
        static_cast<u16>(proto_of.size()));
    if (pin) {
      proto_values_.emplace_back(r.proto, pit->second);
    }
    combos_.emplace(combo_key(l1, l2, l3, l4, pit->second), ri);
  }
}

const ruleset::Rule* OptionTrie::classify(const net::FiveTuple& h,
                                          LookupCost* cost) const {
  u64 accesses = 0;
  std::vector<u16> l1, l2, l3, l4, l5;
  src_trie_->lookup(h.src_ip, l1, accesses);
  dst_trie_->lookup(h.dst_ip, l2, accesses);
  sport_trie_->lookup(h.src_port, l3, accesses);
  dport_trie_->lookup(h.dst_port, l4, accesses);
  ++accesses;  // protocol register LUT
  for (const auto& [match, label] : proto_values_) {
    if (match.matches(h.protocol)) l5.push_back(label);
  }

  // A range can reach the walk through several expanded prefixes; the
  // label list may therefore contain duplicates — dedup before the
  // cross-product so probes are not double-counted.
  auto dedup = [](std::vector<u16>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  dedup(l3);
  dedup(l4);

  const ruleset::Rule* best = nullptr;
  for (u16 a : l1) {
    for (u16 b : l2) {
      for (u16 c : l3) {
        for (u16 d : l4) {
          for (u16 e : l5) {
            ++accesses;  // one hash probe
            const auto it = combos_.find(combo_key(a, b, c, d, e));
            if (it != combos_.end()) {
              const ruleset::Rule& r = rules_[it->second];
              if (best == nullptr || r.priority < best->priority ||
                  (r.priority == best->priority && r.id < best->id)) {
                best = &r;
              }
            }
          }
        }
      }
    }
  }
  if (cost != nullptr) {
    cost->memory_accesses += accesses;
  }
  return best;
}

u64 OptionTrie::memory_bits() const {
  constexpr u64 kRuleBits = 2 * (32 + 6) + 2 * 32 + 9;
  return src_trie_->memory_bits() + dst_trie_->memory_bits() +
         sport_trie_->memory_bits() + dport_trie_->memory_bits() +
         u64{proto_values_.size()} * 9 + u64{combos_.size()} * 64 +
         rules_.size() * kRuleBits;
}

}  // namespace pclass::baseline
