/// \file linear_search.hpp
/// Priority-ordered linear scan — the semantic ground truth (every other
/// classifier in this repository is tested against it) and the trivial
/// lower bound on memory / upper bound on lookup cost.
#pragma once

#include <vector>

#include "baseline/baseline.hpp"

namespace pclass::baseline {

class LinearSearch final : public Baseline {
 public:
  explicit LinearSearch(const ruleset::RuleSet& rules);

  [[nodiscard]] const ruleset::Rule* classify(const net::FiveTuple& h,
                                              LookupCost* cost) const override;
  [[nodiscard]] u64 memory_bits() const override;
  [[nodiscard]] const std::string& name() const override { return name_; }

 private:
  std::string name_ = "LinearSearch";
  std::vector<ruleset::Rule> rules_;  ///< sorted by (priority, id)
};

}  // namespace pclass::baseline
