/// \file hypercuts.hpp
/// HyperCuts [Singh et al., SIGCOMM 2003] — the multi-dimensional
/// decision-tree baseline of Table I. Each internal node cuts the 5-D
/// search space uniformly along up to two dimensions (the classic
/// HyperCuts heuristic: cut the dimensions with the most distinct rule
/// projections); rules are replicated into every child they overlap;
/// leaves hold at most `binth` rules searched linearly.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "baseline/baseline.hpp"

namespace pclass::baseline {

/// Build parameters (defaults follow the original paper's evaluation).
struct HyperCutsConfig {
  usize binth = 8;          ///< max rules in a leaf
  unsigned max_depth = 24;  ///< safety bound
  unsigned max_cuts_per_dim = 8;
  unsigned max_children = 64;
  /// Space factor: a cut is accepted only if the total rule replication
  /// across children stays below spfac * n (the original HyperCuts
  /// space/time knob). Cuts that fail are retried with fewer children
  /// and abandoned (leaf) when even a binary cut explodes.
  double spfac = 2.0;
};

class HyperCuts final : public Baseline {
 public:
  explicit HyperCuts(const ruleset::RuleSet& rules, HyperCutsConfig cfg = {});

  [[nodiscard]] const ruleset::Rule* classify(const net::FiveTuple& h,
                                              LookupCost* cost) const override;
  [[nodiscard]] u64 memory_bits() const override;
  [[nodiscard]] const std::string& name() const override { return name_; }

  [[nodiscard]] usize node_count() const { return nodes_.size(); }
  [[nodiscard]] unsigned depth() const { return depth_; }

 private:
  /// 5-D box: per-dimension inclusive [lo, hi] over the field domains.
  struct Box {
    std::array<u64, 5> lo{};
    std::array<u64, 5> hi{};
  };

  struct Node {
    bool leaf = true;
    std::vector<u32> rules;  ///< rule indices (leaf)
    // Internal: cut description.
    std::array<i8, 2> cut_dim = {-1, -1};
    std::array<u8, 2> cut_bits = {0, 0};  ///< log2(cuts) per cut dim
    Box box{};
    std::vector<i32> children;  ///< -1 = empty child
  };

  u32 build(const std::vector<u32>& rule_idx, const Box& box,
            unsigned depth);
  [[nodiscard]] static std::array<u64, 5> rule_lo(const ruleset::Rule& r);
  [[nodiscard]] static std::array<u64, 5> rule_hi(const ruleset::Rule& r);
  [[nodiscard]] static std::array<u64, 5> header_point(
      const net::FiveTuple& h);

  std::string name_ = "HyperCuts";
  HyperCutsConfig cfg_;
  std::vector<ruleset::Rule> rules_;
  std::vector<Node> nodes_;
  unsigned depth_ = 0;
};

}  // namespace pclass::baseline
