/// \file sw_trie.hpp
/// Software multi-bit trie shared by the Option-1/Option-2 combinations
/// and the DCFL field engines (the paper's previous-work baselines of
/// Table I). Unlike alg::MultiBitTrie it is not leaf-pushed: a lookup
/// walks the levels and reads the label list anchored at every matched
/// entry, which is exactly why the 5-level IP option pays more list
/// accesses than the 4-level one — the effect Table I shows between
/// Option 1 and Option 2.
#pragma once

#include <vector>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/types.hpp"

namespace pclass::baseline {

/// Build-once software trie over keys of up to 32 bits.
class SwTrie {
 public:
  /// \param strides  per-level strides; must sum to \p key_bits.
  SwTrie(std::vector<unsigned> strides, unsigned key_bits);

  /// Anchor \p item at prefix (value, len). Call before any lookup.
  void insert(u32 value, u8 len, u16 item);

  /// Collect the items of every prefix covering \p key. Charges one
  /// access per visited node entry plus one per list element read.
  void lookup(u32 key, std::vector<u16>& out, u64& accesses) const;

  /// Storage: every allocated node's entry array (child pointer + list
  /// pointer per entry) plus the list elements themselves.
  [[nodiscard]] u64 memory_bits() const;

  [[nodiscard]] usize node_count() const { return nodes_.size(); }
  [[nodiscard]] unsigned levels() const {
    return static_cast<unsigned>(strides_.size());
  }

 private:
  struct Entry {
    i32 child = -1;
    std::vector<u16> items;
  };
  struct Node {
    std::vector<Entry> entries;
  };

  [[nodiscard]] u32 slice(u32 key, usize level) const;

  std::vector<unsigned> strides_;
  std::vector<unsigned> cum_;
  unsigned key_bits_;
  std::vector<Node> nodes_;  ///< nodes_[0] = root
};

/// Split an inclusive range [lo, hi] within a \p width-bit domain into
/// the minimal set of aligned prefixes (value, len) — the standard
/// range-to-prefix expansion used to put port ranges into tries.
[[nodiscard]] std::vector<std::pair<u32, u8>> range_to_prefixes(
    u32 lo, u32 hi, unsigned width);

}  // namespace pclass::baseline
