/// \file dcfl.hpp
/// Distributed Crossproducting of Field Labels [Taylor & Turner,
/// INFOCOM 2005] — the decomposition baseline the paper's label method
/// derives from (§II: "individual-field lookups are performed in
/// parallel. The individual results are combined to produce the final
/// result using a label method").
///
/// Five field engines return the label *sets* of all matching unique
/// field values; an aggregation network then intersects them pairwise
/// against tables of label combinations that actually occur in the rule
/// set:
///
///   (srcIP x dstIP) -> L12,  (L12 x sport) -> L123,
///   (L123 x dport) -> L1234, (L1234 x proto) -> matching rules
///
/// Each combination probe is one memory access (the paper's DCFL row:
/// few accesses, generous memory for the aggregation tables).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "baseline/baseline.hpp"
#include "baseline/sw_trie.hpp"

namespace pclass::baseline {

class Dcfl final : public Baseline {
 public:
  explicit Dcfl(const ruleset::RuleSet& rules);

  [[nodiscard]] const ruleset::Rule* classify(const net::FiveTuple& h,
                                              LookupCost* cost) const override;
  [[nodiscard]] u64 memory_bits() const override;
  [[nodiscard]] const std::string& name() const override { return name_; }

 private:
  /// One aggregation stage: valid (left meta-label, right label) pairs
  /// mapped to the next stage's meta-label.
  struct AggTable {
    std::unordered_map<u64, u32> combos;
    [[nodiscard]] static u64 key(u32 left, u32 right) {
      return (u64{left} << 32) | right;
    }
  };

  std::string name_ = "DCFL";
  std::vector<ruleset::Rule> rules_;  ///< priority order

  // Field engines over unique field values.
  std::unique_ptr<SwTrie> src_trie_;  ///< 32-bit, labels of unique prefixes
  std::unique_ptr<SwTrie> dst_trie_;
  std::vector<std::pair<ruleset::PortRange, u16>> sport_values_;
  std::vector<std::pair<ruleset::PortRange, u16>> dport_values_;
  std::vector<std::pair<ruleset::ProtoMatch, u16>> proto_values_;

  AggTable agg12_, agg123_, agg1234_;
  /// Final stage: (L1234 meta-label, proto label) -> best rule index.
  std::unordered_map<u64, u32> final_;

  u64 field_structure_bits_ = 0;
};

}  // namespace pclass::baseline
