/// \file option_trie.hpp
/// The "Option 1" and "Option 2" single-field algorithm combinations of
/// Table I (from the authors' prior work [17], ICC 2014):
///
///   Option 1: 5-level multi-bit trie for the 32-bit IP fields,
///             4-level segment trie for the port fields,
///             register LUT for the protocol.
///   Option 2: 4-level multi-bit trie, 5-level segment trie, LUT.
///
/// Each field engine returns the labels of all matching unique field
/// values (lists read along the trie walk — not leaf-pushed); the final
/// result is the best-priority hit over the label cross-product, probed
/// against a hash table of rule label combinations.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "baseline/baseline.hpp"
#include "baseline/sw_trie.hpp"

namespace pclass::baseline {

/// Field-engine structure of one option.
struct OptionConfig {
  std::string name;
  std::vector<unsigned> ip_strides;
  std::vector<unsigned> port_strides;

  [[nodiscard]] static OptionConfig option1() {
    return {"Option1", {7, 7, 6, 6, 6}, {4, 4, 4, 4}};
  }
  [[nodiscard]] static OptionConfig option2() {
    return {"Option2", {8, 8, 8, 8}, {4, 3, 3, 3, 3}};
  }
};

class OptionTrie final : public Baseline {
 public:
  OptionTrie(const ruleset::RuleSet& rules, OptionConfig cfg);

  [[nodiscard]] const ruleset::Rule* classify(const net::FiveTuple& h,
                                              LookupCost* cost) const override;
  [[nodiscard]] u64 memory_bits() const override;
  [[nodiscard]] const std::string& name() const override {
    return cfg_.name;
  }

 private:
  [[nodiscard]] static u64 combo_key(u16 a, u16 b, u16 c, u16 d, u16 e) {
    return (u64{a} << 52) | (u64{b} << 39) | (u64{c} << 26) |
           (u64{d} << 13) | e;
  }

  OptionConfig cfg_;
  std::vector<ruleset::Rule> rules_;  ///< priority order

  std::unique_ptr<SwTrie> src_trie_, dst_trie_;
  std::unique_ptr<SwTrie> sport_trie_, dport_trie_;
  std::vector<std::pair<ruleset::ProtoMatch, u16>> proto_values_;
  std::unordered_map<u64, u32> combos_;  ///< label combo -> rule index
};

}  // namespace pclass::baseline
