#include "baseline/hypercuts.hpp"

#include <algorithm>
#include <set>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace pclass::baseline {

namespace {
constexpr std::array<u64, 5> kDomainHi = {0xFFFFFFFFull, 0xFFFFFFFFull,
                                          0xFFFFull, 0xFFFFull, 0xFFull};
}

std::array<u64, 5> HyperCuts::rule_lo(const ruleset::Rule& r) {
  return {u64{r.src_ip.value}, u64{r.dst_ip.value}, u64{r.src_port.lo},
          u64{r.dst_port.lo}, r.proto.wildcard ? 0 : u64{r.proto.value}};
}

std::array<u64, 5> HyperCuts::rule_hi(const ruleset::Rule& r) {
  const u64 src_hi = u64{r.src_ip.value} | mask_low(32u - r.src_ip.length);
  const u64 dst_hi = u64{r.dst_ip.value} | mask_low(32u - r.dst_ip.length);
  return {src_hi, dst_hi, u64{r.src_port.hi}, u64{r.dst_port.hi},
          r.proto.wildcard ? 0xFFull : u64{r.proto.value}};
}

std::array<u64, 5> HyperCuts::header_point(const net::FiveTuple& h) {
  return {u64{h.src_ip}, u64{h.dst_ip}, u64{h.src_port}, u64{h.dst_port},
          u64{h.protocol}};
}

HyperCuts::HyperCuts(const ruleset::RuleSet& rules, HyperCutsConfig cfg)
    : cfg_(cfg) {
  rules_.assign(rules.begin(), rules.end());
  std::stable_sort(rules_.begin(), rules_.end(),
                   [](const ruleset::Rule& a, const ruleset::Rule& b) {
                     if (a.priority != b.priority) {
                       return a.priority < b.priority;
                     }
                     return a.id < b.id;
                   });
  std::vector<u32> all(rules_.size());
  for (u32 i = 0; i < all.size(); ++i) all[i] = i;
  Box root;
  root.lo.fill(0);
  root.hi = kDomainHi;
  build(all, root, 0);
}

u32 HyperCuts::build(const std::vector<u32>& rule_idx, const Box& box,
                     unsigned depth) {
  const u32 id = static_cast<u32>(nodes_.size());
  nodes_.emplace_back();
  nodes_[id].box = box;
  depth_ = std::max(depth_, depth);

  if (rule_idx.size() <= cfg_.binth || depth >= cfg_.max_depth) {
    nodes_[id].rules = rule_idx;
    return id;
  }

  // Distinct clipped projections per dimension (the HyperCuts dimension-
  // selection heuristic: cut where rules are most diverse).
  std::array<usize, 5> distinct{};
  for (usize d = 0; d < 5; ++d) {
    std::set<std::pair<u64, u64>> proj;
    for (u32 ri : rule_idx) {
      const u64 lo = std::max(rule_lo(rules_[ri])[d], box.lo[d]);
      const u64 hi = std::min(rule_hi(rules_[ri])[d], box.hi[d]);
      proj.insert({lo, hi});
    }
    distinct[d] = proj.size();
  }

  std::array<usize, 5> order = {0, 1, 2, 3, 4};
  std::sort(order.begin(), order.end(),
            [&](usize a, usize b) { return distinct[a] > distinct[b]; });

  std::array<i8, 2> cut_dim = {-1, -1};
  std::array<u8, 2> cut_bits = {0, 0};
  unsigned total_bits = 0;
  const unsigned max_total = ceil_log2(cfg_.max_children);
  for (usize pick = 0; pick < 2; ++pick) {
    const usize d = order[pick];
    if (distinct[d] <= 1) break;
    // The box extent bounds how far this dimension can still be cut.
    const u64 extent = box.hi[d] - box.lo[d] + 1;
    const unsigned extent_bits = extent == 0 ? 64 : ceil_log2(extent);
    const unsigned want =
        std::min({ceil_log2(u64{distinct[d]}),
                  unsigned{cfg_.max_cuts_per_dim > 1
                               ? ceil_log2(u64{cfg_.max_cuts_per_dim})
                               : 0},
                  extent_bits, max_total - total_bits});
    if (want == 0) continue;
    cut_dim[pick] = static_cast<i8>(d);
    cut_bits[pick] = static_cast<u8>(want);
    total_bits += want;
  }
  if (cut_dim[0] < 0) {
    nodes_[id].rules = rule_idx;  // nothing to cut on
    return id;
  }

  // Try the heuristic cut, shrinking it until both HyperCuts acceptance
  // criteria hold: replication bounded by spfac * n, and strict progress
  // (the largest child strictly smaller than the parent). Unbounded
  // replication is what blows decision trees up on wildcard-heavy sets.
  std::vector<std::vector<u32>> cells;
  std::vector<Box> cell_box;
  bool accepted = false;
  while (!accepted && cut_bits[0] + cut_bits[1] > 0) {
    const u32 nc0 = u32{1} << cut_bits[0];
    const u32 nc1 = cut_dim[1] >= 0 ? (u32{1} << cut_bits[1]) : 1;
    cells.assign(usize{nc0} * nc1, {});
    cell_box.assign(cells.size(), box);
    usize total = 0, largest = 0;
    for (u32 c0 = 0; c0 < nc0; ++c0) {
      for (u32 c1 = 0; c1 < nc1; ++c1) {
        Box& cb = cell_box[usize{c0} * nc1 + c1];
        const usize d0 = static_cast<usize>(cut_dim[0]);
        const u64 w0 = (box.hi[d0] - box.lo[d0] + 1) >> cut_bits[0];
        cb.lo[d0] = box.lo[d0] + u64{c0} * w0;
        cb.hi[d0] = cb.lo[d0] + w0 - 1;
        if (cut_dim[1] >= 0) {
          const usize d1 = static_cast<usize>(cut_dim[1]);
          const u64 w1 = (box.hi[d1] - box.lo[d1] + 1) >> cut_bits[1];
          cb.lo[d1] = box.lo[d1] + u64{c1} * w1;
          cb.hi[d1] = cb.lo[d1] + w1 - 1;
        }
        auto& cell = cells[usize{c0} * nc1 + c1];
        for (u32 ri : rule_idx) {
          const auto rlo = rule_lo(rules_[ri]);
          const auto rhi = rule_hi(rules_[ri]);
          bool overlap = true;
          for (usize d = 0; d < 5 && overlap; ++d) {
            overlap = rlo[d] <= cb.hi[d] && rhi[d] >= cb.lo[d];
          }
          if (overlap) cell.push_back(ri);
        }
        total += cell.size();
        largest = std::max(largest, cell.size());
      }
    }
    if (largest < rule_idx.size() &&
        static_cast<double>(total) <=
            cfg_.spfac * static_cast<double>(rule_idx.size())) {
      accepted = true;
      break;
    }
    // Shrink the wider cut first and retry.
    if (cut_bits[0] >= cut_bits[1]) {
      if (cut_bits[0] > 0) --cut_bits[0];
    } else if (cut_bits[1] > 0) {
      --cut_bits[1];
      if (cut_bits[1] == 0) cut_dim[1] = -1;
    }
    if (cut_bits[1] == 0) cut_dim[1] = -1;
  }
  if (!accepted) {
    nodes_[id].rules = rule_idx;  // no acceptable cut: linear leaf
    return id;
  }

  nodes_[id].leaf = false;
  nodes_[id].cut_dim = cut_dim;
  nodes_[id].cut_bits = cut_bits;
  nodes_[id].children.assign(cells.size(), -1);
  for (usize c = 0; c < cells.size(); ++c) {
    if (cells[c].empty()) continue;
    const u32 child = build(cells[c], cell_box[c], depth + 1);
    nodes_[id].children[c] = static_cast<i32>(child);
  }
  return id;
}

const ruleset::Rule* HyperCuts::classify(const net::FiveTuple& h,
                                         LookupCost* cost) const {
  const auto pt = header_point(h);
  u32 node = 0;
  while (true) {
    const Node& n = nodes_[node];
    if (cost != nullptr) {
      ++cost->memory_accesses;  // node header word
    }
    if (n.leaf) {
      for (u32 ri : n.rules) {
        if (cost != nullptr) {
          ++cost->memory_accesses;  // rule record
        }
        if (rules_[ri].matches(h)) {
          return &rules_[ri];
        }
      }
      return nullptr;
    }
    const usize d0 = static_cast<usize>(n.cut_dim[0]);
    const u64 w0 = (n.box.hi[d0] - n.box.lo[d0] + 1) >> n.cut_bits[0];
    const u64 c0 = (pt[d0] - n.box.lo[d0]) / w0;
    u64 c1 = 0;
    u64 nc1 = 1;
    if (n.cut_dim[1] >= 0) {
      const usize d1 = static_cast<usize>(n.cut_dim[1]);
      const u64 w1 = (n.box.hi[d1] - n.box.lo[d1] + 1) >> n.cut_bits[1];
      c1 = (pt[d1] - n.box.lo[d1]) / w1;
      nc1 = u64{1} << n.cut_bits[1];
    }
    const i32 child = n.children[static_cast<usize>(c0 * nc1 + c1)];
    if (child < 0) {
      return nullptr;  // empty region
    }
    node = static_cast<u32>(child);
  }
}

u64 HyperCuts::memory_bits() const {
  // Node header (box is implicit in hardware via the walk; we charge the
  // classic 64-bit node descriptor), child pointers, and leaf rule lists
  // (pointers into the shared rule table) plus the rule table itself.
  constexpr u64 kNodeBits = 64;
  constexpr u64 kPtrBits = 20;
  constexpr u64 kRuleRefBits = 16;
  constexpr u64 kRuleBits = 2 * (32 + 6) + 2 * 32 + 9;
  u64 bits = rules_.size() * kRuleBits;
  for (const Node& n : nodes_) {
    bits += kNodeBits;
    bits += n.children.size() * kPtrBits;
    bits += n.rules.size() * kRuleRefBits;
  }
  return bits;
}

}  // namespace pclass::baseline
