#include "baseline/sw_trie.hpp"

#include <algorithm>
#include <bit>

namespace pclass::baseline {

SwTrie::SwTrie(std::vector<unsigned> strides, unsigned key_bits)
    : strides_(std::move(strides)), key_bits_(key_bits) {
  if (key_bits_ == 0 || key_bits_ > 32) {
    throw ConfigError("SwTrie: key_bits must be in [1, 32]");
  }
  unsigned sum = 0;
  for (unsigned s : strides_) {
    if (s == 0 || s > 16) {
      throw ConfigError("SwTrie: stride out of range");
    }
    sum += s;
    cum_.push_back(sum);
  }
  if (sum != key_bits_) {
    throw ConfigError("SwTrie: strides must sum to key_bits");
  }
  nodes_.emplace_back();
  nodes_[0].entries.resize(usize{1} << strides_[0]);
}

u32 SwTrie::slice(u32 key, usize level) const {
  const unsigned shift = key_bits_ - cum_[level];
  return (key >> shift) & static_cast<u32>(mask_low(strides_[level]));
}

void SwTrie::insert(u32 value, u8 len, u16 item) {
  if (len > key_bits_) {
    throw ConfigError("SwTrie: prefix longer than key");
  }
  // Find the anchor level: the first level whose cumulative stride
  // covers the prefix.
  usize anchor = 0;
  while (len > cum_[anchor]) {
    ++anchor;
  }
  // Walk/create the path.
  usize node = 0;
  for (usize k = 0; k < anchor; ++k) {
    Entry& e = nodes_[node].entries[slice(value, k)];
    if (e.child < 0) {
      e.child = static_cast<i32>(nodes_.size());
      nodes_.emplace_back();
      nodes_.back().entries.resize(usize{1} << strides_[k + 1]);
    }
    node = static_cast<usize>(e.child);
  }
  // Expand onto the covered entry span.
  const unsigned prev = anchor == 0 ? 0 : cum_[anchor - 1];
  const unsigned span_bits = cum_[anchor] - std::max<unsigned>(len, prev);
  const u32 base = slice(value, anchor);
  for (u32 e = base; e <= base + (u32{1} << span_bits) - 1; ++e) {
    nodes_[node].entries[e].items.push_back(item);
  }
}

void SwTrie::lookup(u32 key, std::vector<u16>& out, u64& accesses) const {
  usize node = 0;
  for (usize k = 0; k < strides_.size(); ++k) {
    const Entry& e = nodes_[node].entries[slice(key, k)];
    ++accesses;  // node entry word
    accesses += e.items.size();  // list elements
    out.insert(out.end(), e.items.begin(), e.items.end());
    if (e.child < 0) {
      break;
    }
    node = static_cast<usize>(e.child);
  }
}

u64 SwTrie::memory_bits() const {
  constexpr u64 kEntryBits = 16 + 16;  // child pointer + list pointer
  constexpr u64 kItemBits = 16;
  u64 bits = 0;
  for (const Node& n : nodes_) {
    bits += n.entries.size() * kEntryBits;
    for (const Entry& e : n.entries) {
      bits += e.items.size() * kItemBits;
    }
  }
  return bits;
}

std::vector<std::pair<u32, u8>> range_to_prefixes(u32 lo, u32 hi,
                                                  unsigned width) {
  if (width == 0 || width > 32 || lo > hi ||
      (width < 32 && hi > mask_low(width))) {
    throw ConfigError("range_to_prefixes: bad range");
  }
  std::vector<std::pair<u32, u8>> out;
  u64 cur = lo;
  const u64 end = u64{hi} + 1;
  while (cur < end) {
    // Largest aligned block starting at cur that fits within the range.
    unsigned block = width;  // log2 of block size
    // Alignment constraint.
    if (cur != 0) {
      const auto tz = static_cast<unsigned>(std::countr_zero(cur));
      block = std::min(block, tz);
    }
    // Size constraint.
    while ((u64{1} << block) > end - cur) {
      --block;
    }
    out.emplace_back(static_cast<u32>(cur),
                     static_cast<u8>(width - block));
    cur += u64{1} << block;
  }
  return out;
}

}  // namespace pclass::baseline
