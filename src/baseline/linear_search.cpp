#include "baseline/linear_search.hpp"

#include <algorithm>

namespace pclass::baseline {

namespace {
// Bits to store one rule verbatim (2 prefixes + 2 ranges + proto).
constexpr u64 kRuleBits = 2 * (32 + 6) + 2 * 32 + 9;
}  // namespace

LinearSearch::LinearSearch(const ruleset::RuleSet& rules) {
  rules_.assign(rules.begin(), rules.end());
  std::stable_sort(rules_.begin(), rules_.end(),
                   [](const ruleset::Rule& a, const ruleset::Rule& b) {
                     if (a.priority != b.priority) {
                       return a.priority < b.priority;
                     }
                     return a.id < b.id;
                   });
}

const ruleset::Rule* LinearSearch::classify(const net::FiveTuple& h,
                                            LookupCost* cost) const {
  for (const ruleset::Rule& r : rules_) {
    if (cost != nullptr) {
      ++cost->memory_accesses;  // one rule record read
    }
    if (r.matches(h)) {
      return &r;
    }
  }
  return nullptr;
}

u64 LinearSearch::memory_bits() const { return rules_.size() * kRuleBits; }

}  // namespace pclass::baseline
