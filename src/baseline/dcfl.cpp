#include "baseline/dcfl.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace pclass::baseline {

Dcfl::Dcfl(const ruleset::RuleSet& rules) {
  rules_.assign(rules.begin(), rules.end());
  std::stable_sort(rules_.begin(), rules_.end(),
                   [](const ruleset::Rule& a, const ruleset::Rule& b) {
                     if (a.priority != b.priority) {
                       return a.priority < b.priority;
                     }
                     return a.id < b.id;
                   });

  // Label the unique field values (priority order => deterministic).
  std::map<std::pair<u32, u8>, u16> src_of, dst_of;
  std::map<std::pair<u16, u16>, u16> sport_of, dport_of;
  std::map<std::pair<u8, bool>, u16> proto_of;
  src_trie_ = std::make_unique<SwTrie>(std::vector<unsigned>{8, 8, 8, 8}, 32);
  dst_trie_ = std::make_unique<SwTrie>(std::vector<unsigned>{8, 8, 8, 8}, 32);

  auto label_ip = [](auto& map, const ruleset::IpPrefix& p, SwTrie& trie) {
    const auto [it, inserted] =
        map.emplace(std::make_pair(p.value, p.length),
                    static_cast<u16>(map.size()));
    if (inserted) {
      trie.insert(p.value, p.length, it->second);
    }
    return it->second;
  };
  auto label_port = [](auto& map, const ruleset::PortRange& r,
                       auto& values) {
    const auto [it, inserted] = map.emplace(std::make_pair(r.lo, r.hi),
                                            static_cast<u16>(map.size()));
    if (inserted) {
      values.emplace_back(r, it->second);
    }
    return it->second;
  };

  for (u32 ri = 0; ri < rules_.size(); ++ri) {
    const ruleset::Rule& r = rules_[ri];
    const u16 l1 = label_ip(src_of, r.src_ip, *src_trie_);
    const u16 l2 = label_ip(dst_of, r.dst_ip, *dst_trie_);
    const u16 l3 = label_port(sport_of, r.src_port, sport_values_);
    const u16 l4 = label_port(dport_of, r.dst_port, dport_values_);
    const auto [pit, pin] = proto_of.emplace(
        std::make_pair(r.proto.value, r.proto.wildcard),
        static_cast<u16>(proto_of.size()));
    if (pin) {
      proto_values_.emplace_back(r.proto, pit->second);
    }
    const u16 l5 = pit->second;

    // Aggregation network tables (meta-labels assigned densely in rule
    // priority order, so earlier = better is preserved for the final
    // stage's keep-first semantics).
    const auto meta = [](AggTable& t, u32 left, u32 right) {
      const auto [it, ins] = t.combos.emplace(
          AggTable::key(left, right), static_cast<u32>(t.combos.size()));
      (void)ins;
      return it->second;
    };
    const u32 m12 = meta(agg12_, l1, l2);
    const u32 m123 = meta(agg123_, m12, l3);
    const u32 m1234 = meta(agg1234_, m123, l4);
    final_.emplace(AggTable::key(m1234, l5), ri);  // keeps best priority
  }

  field_structure_bits_ = src_trie_->memory_bits() +
                          dst_trie_->memory_bits() +
                          u64{sport_values_.size()} * 40 +
                          u64{dport_values_.size()} * 40 +
                          u64{proto_values_.size()} * 9;
}

const ruleset::Rule* Dcfl::classify(const net::FiveTuple& h,
                                    LookupCost* cost) const {
  u64 accesses = 0;

  std::vector<u16> l1, l2, l3, l4, l5;
  src_trie_->lookup(h.src_ip, l1, accesses);
  dst_trie_->lookup(h.dst_ip, l2, accesses);
  ++accesses;  // parallel port registers, one probe
  for (const auto& [range, label] : sport_values_) {
    if (range.contains(h.src_port)) l3.push_back(label);
  }
  ++accesses;
  for (const auto& [range, label] : dport_values_) {
    if (range.contains(h.dst_port)) l4.push_back(label);
  }
  ++accesses;  // protocol LUT
  for (const auto& [match, label] : proto_values_) {
    if (match.matches(h.protocol)) l5.push_back(label);
  }

  // Aggregation: each candidate combination costs one probe.
  auto aggregate = [&](const AggTable& t, const std::vector<u32>& left,
                       const std::vector<u16>& right) {
    std::vector<u32> out;
    for (u32 a : left) {
      for (u16 b : right) {
        ++accesses;
        const auto it = t.combos.find(AggTable::key(a, b));
        if (it != t.combos.end()) {
          out.push_back(it->second);
        }
      }
    }
    return out;
  };

  const std::vector<u32> wide1(l1.begin(), l1.end());
  const std::vector<u32> m12 = aggregate(agg12_, wide1, l2);
  const std::vector<u32> m123 = aggregate(agg123_, m12, l3);
  const std::vector<u32> m1234 = aggregate(agg1234_, m123, l4);

  const ruleset::Rule* best = nullptr;
  for (u32 m : m1234) {
    for (u16 p : l5) {
      ++accesses;
      const auto it = final_.find(AggTable::key(m, p));
      if (it != final_.end()) {
        const ruleset::Rule& r = rules_[it->second];
        if (best == nullptr || r.priority < best->priority ||
            (r.priority == best->priority && r.id < best->id)) {
          best = &r;
        }
      }
    }
  }

  if (cost != nullptr) {
    cost->memory_accesses += accesses;
  }
  return best;
}

u64 Dcfl::memory_bits() const {
  // Aggregation tables: hashed (left,right)->meta entries; 64 bits per
  // entry at 100% load is charitable to neither side.
  const u64 agg_bits = (u64{agg12_.combos.size()} +
                        agg123_.combos.size() + agg1234_.combos.size() +
                        final_.size()) *
                       64;
  constexpr u64 kRuleBits = 2 * (32 + 6) + 2 * 32 + 9;
  return field_structure_bits_ + agg_bits + rules_.size() * kRuleBits;
}

}  // namespace pclass::baseline
