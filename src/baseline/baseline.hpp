/// \file baseline.hpp
/// Common interface of the comparison classifiers used for Table I /
/// Table VII: every baseline is built from a RuleSet, classifies headers
/// with an explicit memory-access count, and reports its storage
/// footprint. The LinearSearch baseline doubles as the correctness
/// oracle for the whole library.
#pragma once

#include <optional>
#include <string>

#include "common/types.hpp"
#include "net/five_tuple.hpp"
#include "ruleset/rule_set.hpp"

namespace pclass::baseline {

/// Measured cost of one baseline lookup.
struct LookupCost {
  u64 memory_accesses = 0;
};

/// Abstract comparison classifier.
class Baseline {
 public:
  virtual ~Baseline() = default;

  /// Highest-priority matching rule, or nullptr on miss. When \p cost is
  /// non-null the implementation adds its memory accesses.
  [[nodiscard]] virtual const ruleset::Rule* classify(
      const net::FiveTuple& h, LookupCost* cost) const = 0;

  /// Total storage of the data structures (bits).
  [[nodiscard]] virtual u64 memory_bits() const = 0;

  [[nodiscard]] virtual const std::string& name() const = 0;
};

}  // namespace pclass::baseline
