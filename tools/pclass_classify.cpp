/// \file pclass_classify.cpp
/// Offline classification driver: load a ClassBench filter file and a
/// trace, run them through the configurable classifier, and report the
/// measured performance — the workflow of the paper's evaluation, on
/// your own rule sets.
///
///   pclass_classify <rules_file> <trace_file> [--alg mbt|bst|rvh]
///                   [--mode first|cross] [--verify]
///                   [--batch-mode scalar|phase2]
///                   [--memo persistent|per-batch|off] [--memo-ways 1|2]
///                   [--path-policy adaptive|phase2|scalar-loop]
///                   [--workers N] [--batch B] [--cache DEPTH]
///                   [--shards N] [--shard-mode replica|partition]
///                   [--steer-symmetric]
///                   [--stats-interval-ms N] [--trace-out FILE]
///                   [--metrics-out FILE]
///
/// With --workers the trace runs through the batched dataplane engine
/// (N worker threads, per-worker flow caches, lock-free rule snapshots)
/// instead of the single-threaded classify loop. The engine path also
/// exposes the telemetry exporters: --stats-interval-ms runs the
/// background StatsSampler, --trace-out writes per-batch spans as
/// chrome://tracing JSON (one track per worker) and --metrics-out dumps
/// end-of-run counters in Prometheus text format. All three require
/// --workers, as do the sharding knobs: --shards N steers packets to N
/// RSS-style shards by 5-tuple flow hash (--steer-symmetric
/// canonicalizes endpoint order so both flow directions co-locate);
/// --shard-mode partition instead splits the ruleset into disjoint
/// per-shard subsets whose verdicts a combiner merges by best
/// (priority, rule id) — verdict-identical to the unsharded run.
///
/// --batch-mode selects how batches run phase 2 (the A/B knob): scalar
/// = packet-at-a-time, phase2 = sorted-key batch engine. It applies to
/// the engine path and to the single-threaded loop (which then
/// classifies in batches of --batch and reports host throughput, so the
/// two modes can be compared directly). Default: phase2.
///
/// --memo controls the combination-probe memo: persistent (default,
/// snapshot-keyed, survives batch boundaries), per-batch (the PR-3
/// reset, the A/B reference) or off; --memo-ways its associativity
/// (2 = set-associative default, 1 = direct-mapped A/B reference).
/// --path-policy pins the phase-2 execution path instead of letting
/// the per-worker cost-model controller pick it per batch.
#include <array>
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "baseline/linear_search.hpp"
#include "common/build_info.hpp"
#include "common/parse.hpp"
#include "common/table.hpp"
#include "core/classifier.hpp"
#include "core/cycle_model.hpp"
#include "dataplane/engine.hpp"
#include "dataplane/flow_steer.hpp"
#include "net/trace.hpp"
#include "ruleset/classbench.hpp"
#include "telemetry/export.hpp"

using namespace pclass;

namespace {

int usage() {
  std::cerr << "usage: pclass_classify <rules_file> <trace_file> "
               "[--alg mbt|bst|rvh] [--mode first|cross] [--verify]\n"
               "                       [--batch-mode scalar|phase2] "
               "[--memo persistent|per-batch|off] [--memo-ways 1|2]\n"
               "                       [--path-policy "
               "adaptive|phase2|scalar-loop] "
               "[--workers N [--batch B] [--cache DEPTH]\n"
               "                        [--shards N] [--shard-mode "
               "replica|partition] [--steer-symmetric]\n"
               "                        [--stats-interval-ms N] "
               "[--trace-out FILE] [--metrics-out FILE]]\n"
               "(--batch/--cache, the shard knobs and the telemetry flags "
               "configure the dataplane engine and require --workers)\n";
  return 2;
}

/// Per-packet agreement of \p clf with the linear-search oracle.
struct OracleVerify {
  usize agree = 0;  ///< headers where clf and oracle return the same rule
  usize want = 0;   ///< headers the oracle matches
};

OracleVerify verify_against_oracle(const core::ConfigurableClassifier& clf,
                                   const ruleset::RuleSet& rules,
                                   const net::Trace& trace) {
  baseline::LinearSearch oracle(rules);
  OracleVerify v;
  for (const auto& e : trace) {
    const auto got = clf.classify(e.header);
    const auto* w = oracle.classify(e.header, nullptr);
    if (w != nullptr) ++v.want;
    if (w == nullptr ? !got.match.has_value()
                     : got.match && got.match->rule == w->id) {
      ++v.agree;
    }
  }
  return v;
}

/// Telemetry export options for the engine path.
struct TelemetryOut {
  u64 stats_interval_ms = 0;
  std::string trace_path;
  std::string metrics_path;
};

/// Dataplane-engine path: the whole trace, batched, across N workers.
int run_engine(const ruleset::RuleSet& rules, const net::Trace& trace,
               core::ClassifierConfig cfg, usize workers, usize batch,
               u32 cache_depth, usize shards, dataplane::ShardMode shard_mode,
               bool steer_symmetric, bool verify, const TelemetryOut& tout) {
  dataplane::RuleProgramPublisher programs(cfg);
  const hw::UpdateStats load = programs.install_ruleset(rules);
  dataplane::TrafficPool pool =
      dataplane::TrafficPool::from_trace(trace, /*materialize=*/false);

  const dataplane::EngineConfig ecfg{
      .workers = workers,
      .batch_size = batch,
      .flow_cache_depth = cache_depth,
      .stats_interval_ms = tout.stats_interval_ms,
      .collect_trace = !tout.trace_path.empty(),
      .shards = shards,
      .shard_mode = shard_mode,
      .steer_symmetric = steer_symmetric};
  // Partition mode: disjoint rule subsets, one publisher per shard
  // (the full-ruleset publisher above keeps serving --verify).
  std::vector<std::unique_ptr<dataplane::RuleProgramPublisher>> part_pubs;
  std::vector<const dataplane::RuleProgramPublisher*> part_ptrs;
  if (shards > 0 && shard_mode == dataplane::ShardMode::kPartition) {
    for (const ruleset::RuleSet& part :
         dataplane::partition_rules(rules, shards)) {
      part_pubs.push_back(
          std::make_unique<dataplane::RuleProgramPublisher>(cfg));
      part_pubs.back()->install_ruleset(part);
      part_ptrs.push_back(part_pubs.back().get());
    }
  }
  const std::unique_ptr<dataplane::Engine> eng =
      part_ptrs.empty()
          ? std::make_unique<dataplane::Engine>(ecfg, programs)
          : std::make_unique<dataplane::Engine>(ecfg, std::move(part_ptrs));
  dataplane::Engine& engine = *eng;
  // The engine clamps degenerate values (0 workers/batch); report the
  // effective geometry, not the requested one.
  workers = engine.config().workers;
  batch = engine.config().batch_size;
  const dataplane::EngineReport rep = engine.run(pool);
  if (const std::string err = rep.first_error(); !err.empty()) {
    std::cerr << "error: dataplane worker failed: " << err << "\n";
    return 1;
  }

  TextTable t({"worker", "packets", "matched", "cache hit%", "p50 cyc",
               "p99 cyc", "Mpps"});
  for (const auto& w : rep.workers) {
    t.add_row({std::to_string(w.worker), std::to_string(w.packets),
               std::to_string(w.matched),
               TextTable::num(w.cache_hit_rate() * 100.0, 1),
               std::to_string(w.latency.percentile(50)),
               std::to_string(w.latency.percentile(99)),
               TextTable::num(w.mpps(), 3)});
  }
  t.print(std::cout);

  if (!rep.shards.empty()) {
    TextTable st({"shard", "packets", "matched", "cache hit%", "p50 cyc",
                  "p99 cyc"});
    for (const auto& s : rep.shards) {
      st.add_row({std::to_string(s.worker), std::to_string(s.packets),
                  std::to_string(s.matched),
                  TextTable::num(s.cache_hit_rate() * 100.0, 1),
                  std::to_string(s.latency.percentile(50)),
                  std::to_string(s.latency.percentile(99))});
    }
    st.print(std::cout);
  }

  const auto lat = rep.merged_latency();
  u64 memo_hits = 0, memo_inval = 0, b_scalar = 0, b_p2 = 0, b_p2m = 0;
  for (const auto& w : rep.workers) {
    memo_hits += w.probe_memo_hits;
    memo_inval += w.probe_memo_invalidations;
    b_scalar += w.path_scalar_loop_batches;
    b_p2 += w.path_phase2_batches;
    b_p2m += w.path_phase2_memo_batches;
  }
  TextTable a({"metric", "value"});
  a.add_row({"engine", std::to_string(workers) + " workers x batch " +
                           std::to_string(batch) + " (" +
                           to_string(cfg.batch_mode) + ")"});
  if (shards > 0) {
    a.add_row({"shards", std::to_string(shards) + " (" +
                             std::string(to_string(shard_mode)) +
                             (steer_symmetric ? ", symmetric steering)"
                                              : ")")});
  }
  a.add_row({"probe memo hits", std::to_string(memo_hits) + " (" +
                                    std::to_string(memo_inval) +
                                    " invalidations)"});
  a.add_row({"controller paths",
             "scalar-loop " + std::to_string(b_scalar) + " / phase2 " +
                 std::to_string(b_p2) + " / phase2+memo " +
                 std::to_string(b_p2m) + " batches"});
  a.add_row({"load cost", std::to_string(load.cycles) + " bus cycles (1 "
                          "coalesced snapshot)"});
  a.add_row({"packets", std::to_string(rep.packets())});
  a.add_row({"matched", std::to_string(rep.matched())});
  a.add_row({"aggregate throughput",
             TextTable::num(rep.aggregate_mpps(), 3) + " Mpps (host)"});
  a.add_row({"lookup cycles p50/p99/max",
             std::to_string(lat.percentile(50)) + " / " +
                 std::to_string(lat.percentile(99)) + " / " +
                 std::to_string(lat.max())});
  a.add_row({"snapshot versions monotonic",
             rep.versions_monotonic() ? "yes" : "NO"});
  if (tout.stats_interval_ms > 0) {
    a.add_row({"timeseries samples", std::to_string(rep.timeseries.size()) +
                                         " (every " +
                                         std::to_string(tout.stats_interval_ms) +
                                         " ms)"});
  }
  if (rep.trace_events_dropped() > 0) {
    a.add_row({"trace events dropped",
               std::to_string(rep.trace_events_dropped())});
  }
  a.print(std::cout);

  if (!tout.trace_path.empty()) {
    const std::array<telemetry::TraceProcess, 1> procs = {
        telemetry::TraceProcess{"pclass_classify", rep.trace_events}};
    std::ofstream os(tout.trace_path);
    if (!os) {
      std::cerr << "error: cannot open " << tout.trace_path << "\n";
      return 1;
    }
    telemetry::write_chrome_trace(os, procs);
    std::cerr << "wrote " << tout.trace_path << "\n";
  }
  if (!tout.metrics_path.empty()) {
    std::ofstream os(tout.metrics_path);
    if (!os) {
      std::cerr << "error: cannot open " << tout.metrics_path << "\n";
      return 1;
    }
    telemetry::MetricsWriter m(os);
    using Label = telemetry::MetricsWriter::Label;
    const std::array<Label, 1> ls = {Label{"tool", "pclass_classify"}};
    m.counter("pclass_packets_total", "Packets processed", ls,
              static_cast<double>(rep.packets()));
    m.counter("pclass_matched_total", "Packets matched by a rule", ls,
              static_cast<double>(rep.matched()));
    m.gauge("pclass_throughput_mpps", "End-of-run aggregate Mpps", ls,
            rep.aggregate_mpps());
    m.gauge("pclass_lookup_cycles_p50", "Modelled lookup cycles, p50", ls,
            static_cast<double>(lat.percentile(50)));
    m.gauge("pclass_lookup_cycles_p99", "Modelled lookup cycles, p99", ls,
            static_cast<double>(lat.percentile(99)));
    m.counter("pclass_probe_memo_hits_total", "Probe-memo hits", ls,
              static_cast<double>(memo_hits));
    m.counter("pclass_trace_events_dropped_total",
              "Trace-ring events lost to overwrite", ls,
              static_cast<double>(rep.trace_events_dropped()));
    const auto vis = rep.update_visibility();
    m.gauge("pclass_update_visibility_mean_ns",
            "Mean publish->worker-visible latency", ls, vis.mean_ns);
    std::cerr << "wrote " << tout.metrics_path << "\n";
  }

  if (verify) {
    // Two checks: (1) per-packet agreement of the published snapshot's
    // classifier with the linear-search oracle (exact — workers all
    // classify through this same frozen device); (2) the engine's
    // aggregate match total against the oracle's, which catches
    // batching/claiming bugs that per-packet replay cannot.
    const auto snap = programs.acquire();
    const OracleVerify v =
        verify_against_oracle(snap->classifier(), rules, trace);
    std::cout << "verify: " << v.agree << "/" << trace.size()
              << " per-packet agree with the oracle; engine matched "
              << rep.matched() << ", oracle matched " << v.want << "\n";
    if (cfg.combine_mode == core::CombineMode::kCrossProduct &&
        (v.agree != trace.size() || rep.matched() != v.want)) {
      return 1;
    }
  }
  return rep.versions_monotonic() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--version") {
    std::cout << common::version_line("pclass_classify") << "\n";
    return 0;
  }
  if (argc < 3) {
    return usage();
  }
  core::IpAlgorithm alg = core::IpAlgorithm::kMbt;
  core::CombineMode mode = core::CombineMode::kCrossProduct;
  core::BatchMode batch_mode = core::BatchMode::kPhase2;
  core::PathPolicy path_policy = core::PathPolicy::kAdaptive;
  bool probe_memo = true;
  bool memo_persistent = true;
  u32 memo_ways = 2;
  bool verify = false;
  usize workers = 0;  // 0 = classic single-threaded loop
  usize batch = net::kDefaultBatchCapacity;
  u32 cache_depth = 0;
  usize shards = 0;
  dataplane::ShardMode shard_mode = dataplane::ShardMode::kReplica;
  bool steer_symmetric = false;
  TelemetryOut tout;
  u64 n = 0;
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--workers" && i + 1 < argc) {
      if (!parse_count(argv[++i], n)) return usage();
      workers = static_cast<usize>(n);
    } else if (flag == "--batch" && i + 1 < argc) {
      if (!parse_count(argv[++i], n) || n == 0) return usage();
      batch = static_cast<usize>(n);
    } else if (flag == "--cache" && i + 1 < argc) {
      if (!parse_count(argv[++i], n)) return usage();
      if (n > std::numeric_limits<u32>::max()) {
        std::cerr << "error: --cache depth too large: " << n << "\n";
        return usage();
      }
      cache_depth = static_cast<u32>(n);
    } else if (flag == "--shards" && i + 1 < argc) {
      if (!parse_count(argv[++i], n)) return usage();
      shards = static_cast<usize>(n);
    } else if (flag == "--shard-mode" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "replica") shard_mode = dataplane::ShardMode::kReplica;
      else if (v == "partition") shard_mode = dataplane::ShardMode::kPartition;
      else return usage();
    } else if (flag == "--steer-symmetric") {
      steer_symmetric = true;
    } else if ((flag == "--alg" || flag == "--ip-alg") && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "mbt") alg = core::IpAlgorithm::kMbt;
      else if (v == "bst") alg = core::IpAlgorithm::kBst;
      else if (v == "rvh") alg = core::IpAlgorithm::kRvh;
      else return usage();
    } else if (flag == "--mode" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "first") mode = core::CombineMode::kFirstLabel;
      else if (v == "cross") mode = core::CombineMode::kCrossProduct;
      else return usage();
    } else if (flag == "--batch-mode" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "scalar") batch_mode = core::BatchMode::kScalar;
      else if (v == "phase2") batch_mode = core::BatchMode::kPhase2;
      else return usage();
    } else if (flag == "--memo" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "persistent") {
        probe_memo = true;
        memo_persistent = true;
      } else if (v == "per-batch") {
        probe_memo = true;
        memo_persistent = false;
      } else if (v == "off") {
        probe_memo = false;
      } else {
        return usage();
      }
    } else if (flag == "--memo-ways" && i + 1 < argc) {
      if (!parse_count(argv[++i], n) || (n != 1 && n != 2)) return usage();
      memo_ways = static_cast<u32>(n);
    } else if (flag == "--path-policy" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "adaptive") path_policy = core::PathPolicy::kAdaptive;
      else if (v == "phase2") path_policy = core::PathPolicy::kForcePhase2;
      else if (v == "scalar-loop") {
        path_policy = core::PathPolicy::kForceScalarLoop;
      } else {
        return usage();
      }
    } else if (flag == "--stats-interval-ms" && i + 1 < argc) {
      if (!parse_count(argv[++i], n) || n > 3'600'000) return usage();
      tout.stats_interval_ms = n;
    } else if (flag == "--trace-out" && i + 1 < argc) {
      tout.trace_path = argv[++i];
    } else if (flag == "--metrics-out" && i + 1 < argc) {
      tout.metrics_path = argv[++i];
    } else if (flag == "--verify") {
      verify = true;
    } else {
      return usage();
    }
  }
  if (workers == 0 && (tout.stats_interval_ms > 0 ||
                       !tout.trace_path.empty() ||
                       !tout.metrics_path.empty())) {
    std::cerr << "error: --stats-interval-ms/--trace-out/--metrics-out "
                 "require the dataplane engine (--workers N)\n";
    return usage();
  }
  if (workers == 0 && (shards > 0 || steer_symmetric)) {
    std::cerr << "error: --shards/--shard-mode/--steer-symmetric require "
                 "the dataplane engine (--workers N)\n";
    return usage();
  }

  try {
    std::ifstream rf(argv[1]);
    if (!rf) throw Error(std::string("cannot open ") + argv[1]);
    const ruleset::RuleSet rules = ruleset::classbench::read(rf, argv[1]);
    std::ifstream tf(argv[2]);
    if (!tf) throw Error(std::string("cannot open ") + argv[2]);
    const net::Trace trace = net::Trace::read(tf);
    std::cout << "loaded " << rules.size() << " rules, " << trace.size()
              << " headers\n";

    core::ClassifierConfig cfg =
        core::ClassifierConfig::for_scale(rules.size());
    cfg.ip_algorithm = alg;
    cfg.combine_mode = mode;
    cfg.batch_mode = batch_mode;
    cfg.batch_probe_memo = probe_memo;
    cfg.batch_memo_persistent = memo_persistent;
    cfg.batch_memo_ways = memo_ways;
    cfg.batch_path_policy = path_policy;

    if (workers > 0) {
      return run_engine(rules, trace, cfg, workers, batch, cache_depth,
                        shards, shard_mode, steer_symmetric, verify, tout);
    }
    if (cache_depth != 0) {
      std::cerr << "note: --cache configures the dataplane engine "
                   "and has no effect without --workers\n";
    }

    core::ConfigurableClassifier clf(cfg);
    const auto load = clf.add_rules(rules);

    // Single-threaded loop, batched: the --batch-mode A/B runs over the
    // same headers with host wall time measured around the batch calls.
    hw::CycleAggregate agg;
    usize hits = 0;
    u64 memo_hits = 0;
    std::vector<net::FiveTuple> headers;
    headers.reserve(trace.size());
    for (const auto& e : trace) headers.push_back(e.header);
    std::vector<core::ClassifyResult> results(headers.size());
    core::BatchScratch scratch;
    const auto t0 = std::chrono::steady_clock::now();
    for (usize off = 0; off < headers.size(); off += batch) {
      const usize len = std::min(batch, headers.size() - off);
      clf.classify_batch(std::span(headers).subspan(off, len),
                         std::span(results).subspan(off, len), scratch);
    }
    const double host_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    for (const auto& res : results) {
      hw::CycleRecorder rec;
      rec.charge(res.cycles, res.memory_accesses);
      agg.add(rec);
      if (res.match) ++hits;
      memo_hits += res.memo_hits;
    }

    const core::ThroughputModel rate{cfg.fmax_mhz};
    const double ii = static_cast<double>(
        clf.lookup_pipeline().initiation_interval());
    TextTable t({"metric", "value"});
    t.add_row({"configuration", std::string(to_string(alg)) + " / " +
                                    to_string(mode) + " / batch " +
                                    to_string(batch_mode)});
    t.add_row({"host throughput",
               TextTable::num(host_secs <= 0
                                  ? 0.0
                                  : static_cast<double>(headers.size()) /
                                        1e6 / host_secs,
                              3) +
                   " Mpps (1 thread, batch " + std::to_string(batch) + ")"});
    if (memo_hits > 0) {
      t.add_row({"probe memo hits",
                 std::to_string(memo_hits) + " (" +
                     std::to_string(scratch.memo_invalidations) +
                     " invalidations)"});
    }
    t.add_row(
        {"controller paths",
         "scalar-loop " +
             std::to_string(
                 scratch.controller.batches(core::BatchPath::kScalarLoop)) +
             " / phase2 " +
             std::to_string(
                 scratch.controller.batches(core::BatchPath::kPhase2)) +
             " / phase2+memo " +
             std::to_string(
                 scratch.controller.batches(core::BatchPath::kPhase2Memo)) +
             " batches"});
    t.add_row({"load cost", std::to_string(load.cycles) + " bus cycles (" +
                                TextTable::num(
                                    static_cast<double>(load.cycles) /
                                        static_cast<double>(rules.size()),
                                    1) +
                                "/rule)"});
    t.add_row({"hits", std::to_string(hits) + "/" +
                           std::to_string(trace.size())});
    t.add_row({"mean cycles/lookup", TextTable::num(agg.mean_cycles())});
    t.add_row({"mean accesses/lookup", TextTable::num(agg.mean_accesses())});
    t.add_row({"worst cycles", std::to_string(agg.max_cycles())});
    t.add_row({"pipelined rate", TextTable::num(
                                     rate.mega_lookups_per_sec(ii)) +
                                     " Mlps = " +
                                     TextTable::num(rate.gbps(ii, 40)) +
                                     " Gbps @40B"});
    const auto mem = clf.memory_report();
    t.add_row({"live memory", TextTable::num(
                                  static_cast<double>(mem.total_used_bits) /
                                      1e3,
                                  0) +
                                  " Kb"});
    t.print(std::cout);

    if (verify) {
      const OracleVerify v = verify_against_oracle(clf, rules, trace);
      std::cout << "verify: " << v.agree << "/" << trace.size()
                << " agree with the linear-search oracle\n";
      if (mode == core::CombineMode::kCrossProduct &&
          v.agree != trace.size()) {
        return 1;
      }
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    // Engine/thread/allocation failures (e.g. an absurd --workers value
    // exhausting std::thread) must exit cleanly, not std::terminate.
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
