/// \file pclass_classify.cpp
/// Offline classification driver: load a ClassBench filter file and a
/// trace, run them through the configurable classifier, and report the
/// measured performance — the workflow of the paper's evaluation, on
/// your own rule sets.
///
///   pclass_classify <rules_file> <trace_file> [--alg mbt|bst]
///                   [--mode first|cross] [--verify]
#include <fstream>
#include <iostream>

#include "baseline/linear_search.hpp"
#include "common/table.hpp"
#include "core/classifier.hpp"
#include "core/cycle_model.hpp"
#include "net/trace.hpp"
#include "ruleset/classbench.hpp"

using namespace pclass;

namespace {

int usage() {
  std::cerr << "usage: pclass_classify <rules_file> <trace_file> "
               "[--alg mbt|bst] [--mode first|cross] [--verify]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return usage();
  }
  core::IpAlgorithm alg = core::IpAlgorithm::kMbt;
  core::CombineMode mode = core::CombineMode::kCrossProduct;
  bool verify = false;
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--alg" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "mbt") alg = core::IpAlgorithm::kMbt;
      else if (v == "bst") alg = core::IpAlgorithm::kBst;
      else return usage();
    } else if (flag == "--mode" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "first") mode = core::CombineMode::kFirstLabel;
      else if (v == "cross") mode = core::CombineMode::kCrossProduct;
      else return usage();
    } else if (flag == "--verify") {
      verify = true;
    } else {
      return usage();
    }
  }

  try {
    std::ifstream rf(argv[1]);
    if (!rf) throw Error(std::string("cannot open ") + argv[1]);
    const ruleset::RuleSet rules = ruleset::classbench::read(rf, argv[1]);
    std::ifstream tf(argv[2]);
    if (!tf) throw Error(std::string("cannot open ") + argv[2]);
    const net::Trace trace = net::Trace::read(tf);
    std::cout << "loaded " << rules.size() << " rules, " << trace.size()
              << " headers\n";

    core::ClassifierConfig cfg =
        core::ClassifierConfig::for_scale(rules.size());
    cfg.ip_algorithm = alg;
    cfg.combine_mode = mode;
    core::ConfigurableClassifier clf(cfg);
    const auto load = clf.add_rules(rules);

    hw::CycleAggregate agg;
    usize hits = 0;
    for (const auto& e : trace) {
      const auto res = clf.classify(e.header);
      hw::CycleRecorder rec;
      rec.charge(res.cycles, res.memory_accesses);
      agg.add(rec);
      if (res.match) ++hits;
    }

    const core::ThroughputModel rate{cfg.fmax_mhz};
    const double ii = static_cast<double>(
        clf.lookup_pipeline().initiation_interval());
    TextTable t({"metric", "value"});
    t.add_row({"configuration", std::string(to_string(alg)) + " / " +
                                    to_string(mode)});
    t.add_row({"load cost", std::to_string(load.cycles) + " bus cycles (" +
                                TextTable::num(
                                    static_cast<double>(load.cycles) /
                                        static_cast<double>(rules.size()),
                                    1) +
                                "/rule)"});
    t.add_row({"hits", std::to_string(hits) + "/" +
                           std::to_string(trace.size())});
    t.add_row({"mean cycles/lookup", TextTable::num(agg.mean_cycles())});
    t.add_row({"mean accesses/lookup", TextTable::num(agg.mean_accesses())});
    t.add_row({"worst cycles", std::to_string(agg.max_cycles())});
    t.add_row({"pipelined rate", TextTable::num(
                                     rate.mega_lookups_per_sec(ii)) +
                                     " Mlps = " +
                                     TextTable::num(rate.gbps(ii, 40)) +
                                     " Gbps @40B"});
    const auto mem = clf.memory_report();
    t.add_row({"live memory", TextTable::num(
                                  static_cast<double>(mem.total_used_bits) /
                                      1e3,
                                  0) +
                                  " Kb"});
    t.print(std::cout);

    if (verify) {
      baseline::LinearSearch oracle(rules);
      usize agree = 0;
      for (const auto& e : trace) {
        const auto got = clf.classify(e.header);
        const auto* want = oracle.classify(e.header, nullptr);
        const bool ok = want == nullptr
                            ? !got.match.has_value()
                            : got.match && got.match->rule == want->id;
        if (ok) ++agree;
      }
      std::cout << "verify: " << agree << "/" << trace.size()
                << " agree with the linear-search oracle\n";
      if (mode == core::CombineMode::kCrossProduct &&
          agree != trace.size()) {
        return 1;
      }
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
