/// \file pclass_gen.cpp
/// Workload generator CLI: emits a ClassBench-format filter file and a
/// matching header trace, using the calibrated synthetic generator
/// (DESIGN.md §2). Drop-in replacement for the original ClassBench
/// db_generator + trace_generator pair for this repository's workloads.
///
///   pclass_gen <acl|fw|ipc> <1000|5000|10000> <out_prefix>
///              [--seed N] [--headers N] [--random-fraction F]
///
/// Writes <out_prefix>.rules and <out_prefix>.trace.
#include <fstream>
#include <iostream>
#include <string>

#include "common/build_info.hpp"
#include "ruleset/classbench.hpp"
#include "ruleset/generator.hpp"
#include "ruleset/stats.hpp"
#include "ruleset/trace_gen.hpp"

using namespace pclass;

namespace {

int usage() {
  std::cerr << "usage: pclass_gen <acl|fw|ipc> <1000|5000|10000> "
               "<out_prefix> [--seed N] [--headers N] "
               "[--random-fraction F]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--version") {
    std::cout << common::version_line("pclass_gen") << "\n";
    return 0;
  }
  if (argc < 4) {
    return usage();
  }
  const std::string type_s = argv[1];
  ruleset::FilterType type;
  if (type_s == "acl") type = ruleset::FilterType::kAcl;
  else if (type_s == "fw") type = ruleset::FilterType::kFw;
  else if (type_s == "ipc") type = ruleset::FilterType::kIpc;
  else return usage();

  usize nominal = 0;
  u64 seed = 2014;
  usize headers = 10000;
  double random_fraction = 0.05;
  try {
    nominal = std::stoul(argv[2]);
    for (int i = 4; i + 1 <= argc - 1; i += 2) {
      const std::string flag = argv[i];
      if (flag == "--seed") seed = std::stoull(argv[i + 1]);
      else if (flag == "--headers") headers = std::stoul(argv[i + 1]);
      else if (flag == "--random-fraction")
        random_fraction = std::stod(argv[i + 1]);
      else return usage();
    }
  } catch (const std::exception&) {
    return usage();
  }
  const std::string prefix = argv[3];

  try {
    const ruleset::RuleSet rules =
        ruleset::make_classbench_like(type, nominal, seed);
    {
      std::ofstream out(prefix + ".rules");
      if (!out) throw Error("cannot open " + prefix + ".rules");
      ruleset::classbench::write(rules, out);
    }
    ruleset::TraceGenerator tg(rules, {.headers = headers,
                                       .random_fraction = random_fraction,
                                       .seed = seed ^ 0xABCD});
    {
      std::ofstream out(prefix + ".trace");
      if (!out) throw Error("cannot open " + prefix + ".trace");
      tg.generate().write(out);
    }
    const auto st = ruleset::RuleSetStats::analyze(rules);
    std::cout << "wrote " << prefix << ".rules (" << rules.size()
              << " rules; unique src=" << st.unique_src_ip
              << " dst=" << st.unique_dst_ip
              << " sport=" << st.unique_src_port
              << " dport=" << st.unique_dst_port
              << " proto=" << st.unique_protocol << ")\n"
              << "wrote " << prefix << ".trace (" << headers
              << " headers)\n";
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
