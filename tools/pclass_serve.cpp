/// \file pclass_serve.cpp
/// Long-running dataplane daemon with a live introspection plane: the
/// engine loops over a header trace while a line-oriented control
/// socket (TCP loopback or Unix domain) serves reads (`read stats|
/// metrics|timeseries|version|verify`), writes (`rule add/remove/
/// modify`, `set <knob>`, `trace start/stop/dump`, `drain`,
/// `shutdown`) and streaming subscriptions (`subscribe stats <ms>`).
/// docs/CONTROL.md documents the wire protocol; tools/pclass_ctl.py is
/// the reference client.
///
///   pclass_serve --rules FILE --trace FILE
///                [--listen tcp:PORT | tcp:HOST:PORT | unix:PATH]
///                [--workers N] [--batch B] [--cache-depth N]
///                [--stats-interval-ms N] [--ip-alg mbt|bst|rvh]
///                [--batch-mode scalar|phase2]
///                [--memo persistent|per-batch|off] [--memo-ways 1|2]
///                [--path-policy adaptive|phase2|scalar-loop]
///                [--shards N] [--steer-symmetric]
///                [--fault-plan SPEC] [--report FILE] [--version]
///
/// --shards N serves the loop with N RSS-style replica shards (per-flow
/// steered slices, one classifier replica + flow cache + probe memo
/// per shard); `read stats` then reports one row per shard. Partition
/// mode is finite-only and rejected here.
///
/// The engine runs supervised: a watchdog thread restarts workers that
/// die (bounded retries with backoff), detects heartbeat stalls, and in
/// sharded mode reassigns an unrecoverable worker's shards to
/// survivors. --fault-plan SPEC injects deterministic faults (grammar:
/// throw:w=W@S, stall:w=W@S:ms=D, pubfail:u=K, conndrop:r=K — see
/// docs/ROBUSTNESS.md) for chaos drills; conndrop events make the
/// control server drop the matching request's connection mid-flight.
/// The exit code is nonzero iff any worker ended permanently failed
/// (post-retry); healed restarts are reported but do not fail the run.
///
/// Rule/trace files may be ClassBench text or the versioned PCR1/PCT1
/// binaries (sniffed by magic). Once serving, the first stdout line is
///
///   READY endpoint=<ep> pid=<pid> version=<v> rules=<n> workers=<k>
///
/// which scripted drivers (CI, pclass_ctl.py --wait) key on.
///
/// Shutdown: SIGINT/SIGTERM or a `write shutdown` request drains the
/// workers (final telemetry flush included), closes every subscriber
/// with a terminal record, writes the JSON report (--report, schema
/// pclass-serve-v1: totals, timeseries, server counters and the
/// socket-to-dataplane update-visibility rollup) and exits 0.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "common/build_info.hpp"
#include "common/parse.hpp"
#include "control/control_plane.hpp"
#include "control/server.hpp"
#include "dataplane/engine.hpp"
#include "fault/fault.hpp"
#include "net/trace.hpp"
#include "ruleset/classbench.hpp"
#include "workload/binio.hpp"
#include "workload/json_writer.hpp"

using namespace pclass;

namespace {

int usage() {
  std::cerr
      << "usage: pclass_serve --rules FILE --trace FILE\n"
         "                    [--listen tcp:PORT|tcp:HOST:PORT|unix:PATH]\n"
         "                    [--workers N] [--batch B] [--cache-depth N]\n"
         "                    [--stats-interval-ms N] "
         "[--ip-alg mbt|bst|rvh]\n"
         "                    [--batch-mode scalar|phase2]\n"
         "                    [--memo persistent|per-batch|off] "
         "[--memo-ways 1|2]\n"
         "                    [--path-policy adaptive|phase2|scalar-loop]\n"
         "                    [--shards N] [--steer-symmetric]\n"
         "                    [--fault-plan SPEC] [--report FILE] "
         "[--version]\n"
         "(rules/trace: ClassBench text or PCR1/PCT1 binaries, sniffed)\n";
  return 2;
}

/// Signal-driven and socket-driven shutdown share one flag; the handler
/// may only touch async-signal-safe state.
std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

/// Load a rule file, sniffing the PCR1 magic vs. ClassBench text.
ruleset::RuleSet load_rules(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw Error("cannot open " + path);
  char magic[4] = {};
  is.read(magic, 4);
  const bool binary = is.gcount() == 4 && std::string_view(magic, 4) == "PCR1";
  is.close();
  if (binary) return workload::binio::load_ruleset_file(path);
  std::ifstream text(path);
  return ruleset::classbench::read(text, path);
}

/// Load a trace file, sniffing the PCT1 magic vs. text.
net::Trace load_trace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw Error("cannot open " + path);
  char magic[4] = {};
  is.read(magic, 4);
  const bool binary = is.gcount() == 4 && std::string_view(magic, 4) == "PCT1";
  is.close();
  if (binary) return workload::binio::load_trace_file(path);
  std::ifstream text(path);
  return net::Trace::read(text);
}

/// `tcp:PORT`, `tcp:HOST:PORT` or `unix:PATH` -> ServerConfig.
control::ServerConfig parse_listen(const std::string& spec) {
  control::ServerConfig cfg;
  if (spec.starts_with("unix:")) {
    cfg.unix_path = spec.substr(5);
    if (cfg.unix_path.empty()) throw Error("--listen unix: empty path");
    return cfg;
  }
  if (!spec.starts_with("tcp:")) {
    throw Error("--listen: expected tcp:PORT, tcp:HOST:PORT or unix:PATH");
  }
  std::string rest = spec.substr(4);
  const usize colon = rest.rfind(':');
  if (colon != std::string::npos) {
    cfg.tcp_host = rest.substr(0, colon);
    rest = rest.substr(colon + 1);
  }
  u64 port = 0;
  if (!parse_count(rest, port) || port > 0xFFFF) {
    throw Error("--listen: bad port '" + rest + "'");
  }
  cfg.tcp_port = static_cast<u16>(port);
  return cfg;
}

void write_report(std::ostream& os, const dataplane::EngineReport& rep,
                  const control::ControlPlane& cp,
                  const control::ControlServer& server) {
  const auto& build = common::build_info();
  const control::SocketVisibility sv = cp.socket_visibility();
  const dataplane::UpdateVisibility uv = rep.update_visibility();
  workload::JsonWriter j(os);
  j.begin_object();
  j.key("schema").value("pclass-serve-v1");
  j.key("meta").begin_object();
  j.key("build").begin_object();
  j.key("version").value(build.version);
  j.key("git_sha").value(build.git_sha);
  j.key("compiler").value(build.compiler);
  j.key("build_type").value(build.build_type);
  j.end_object();
  j.end_object();
  j.key("endpoint").value(server.endpoint());
  j.key("wall_seconds").value(rep.wall_seconds);

  u64 batches = 0, dropped = 0, cache_hits = 0, lookups = 0, mem = 0,
      memo_hits = 0;
  j.key("workers").begin_array();
  for (const auto& w : rep.workers) {
    batches += w.batches;
    dropped += w.dropped;
    cache_hits += w.cache_hits;
    lookups += w.classifier_lookups;
    mem += w.memory_accesses;
    memo_hits += w.probe_memo_hits;
    j.begin_object();
    j.key("worker").value(static_cast<u64>(w.worker));
    j.key("packets").value(w.packets);
    j.key("batches").value(w.batches);
    j.key("matched").value(w.matched);
    j.key("dropped").value(w.dropped);
    j.key("cache_hits").value(w.cache_hits);
    j.key("classifier_lookups").value(w.classifier_lookups);
    j.key("memory_accesses").value(w.memory_accesses);
    j.key("probe_memo_hits").value(w.probe_memo_hits);
    j.key("mpps").value(w.mpps());
    j.key("p50_cycles").value(w.latency.percentile(50));
    j.key("p99_cycles").value(w.latency.percentile(99));
    if (!w.error.empty()) j.key("error").value(w.error);
    j.end_object();
  }
  j.end_array();

  // Raw per-shard rows (empty unsharded); workers[] above stays the
  // authoritative double-count-free view.
  j.key("shards").begin_array();
  for (const auto& s : rep.shards) {
    j.begin_object();
    j.key("shard").value(static_cast<u64>(s.worker));
    j.key("packets").value(s.packets);
    j.key("batches").value(s.batches);
    j.key("matched").value(s.matched);
    j.key("dropped").value(s.dropped);
    j.key("cache_hits").value(s.cache_hits);
    j.key("classifier_lookups").value(s.classifier_lookups);
    j.key("memory_accesses").value(s.memory_accesses);
    j.key("probe_memo_hits").value(s.probe_memo_hits);
    j.key("p50_cycles").value(s.latency.percentile(50));
    j.key("p99_cycles").value(s.latency.percentile(99));
    j.end_object();
  }
  j.end_array();

  j.key("totals").begin_object();
  j.key("packets").value(rep.packets());
  j.key("batches").value(batches);
  j.key("matched").value(rep.matched());
  j.key("dropped").value(dropped);
  j.key("cache_hits").value(cache_hits);
  j.key("classifier_lookups").value(lookups);
  j.key("memory_accesses").value(mem);
  j.key("probe_memo_hits").value(memo_hits);
  j.key("aggregate_mpps").value(rep.aggregate_mpps());
  j.end_object();

  j.key("update_visibility").begin_object();
  j.key("samples").value(uv.samples);
  j.key("mean_ns").value(uv.mean_ns);
  j.key("max_ns").value(uv.max_ns);
  j.end_object();

  j.key("socket").begin_object();
  j.key("updates_accepted").value(cp.updates_accepted());
  j.key("connections_accepted").value(server.connections_accepted());
  j.key("connections_rejected").value(server.connections_rejected());
  j.key("requests_served").value(server.requests_served());
  j.key("visibility").begin_object();
  j.key("samples").value(sv.samples);
  j.key("cmd_to_first_mean_ns").value(sv.cmd_to_first_mean_ns);
  j.key("cmd_to_first_max_ns").value(sv.cmd_to_first_max_ns);
  j.key("cmd_to_all_mean_ns").value(sv.cmd_to_all_mean_ns);
  j.key("cmd_to_all_max_ns").value(sv.cmd_to_all_max_ns);
  j.key("publish_to_first_mean_ns").value(sv.publish_to_first_mean_ns);
  j.key("publish_to_first_max_ns").value(sv.publish_to_first_max_ns);
  j.key("pending").value(sv.pending);
  j.key("unresolved").value(sv.unresolved);
  j.end_object();
  j.end_object();

  j.key("supervisor").begin_object();
  j.key("worker_restarts").value(rep.worker_restarts);
  j.key("stall_detections").value(rep.stall_detections);
  j.key("shards_reassigned").value(rep.shards_reassigned);
  j.key("workers_failed").value(rep.workers_failed);
  j.end_object();

  j.key("errors").begin_array();
  for (const auto& d : rep.error_log) {
    j.begin_object();
    j.key("worker").value(static_cast<u64>(d.worker));
    j.key("restarts").value(d.restarts);
    j.key("permanent").value(d.permanent);
    j.key("message").value(d.message);
    j.end_object();
  }
  j.end_array();

  j.key("timeseries").begin_array();
  for (const auto& s : rep.timeseries) control::write_stats_sample(j, s);
  j.end_array();
  j.end_object();
  os << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string rules_path;
  std::string trace_path;
  std::string listen_spec = "tcp:0";
  std::string report_path;
  usize workers = 2;
  usize batch = net::kDefaultBatchCapacity;
  u32 cache_depth = 0;
  u64 stats_interval_ms = 100;
  core::IpAlgorithm ip_algorithm = core::IpAlgorithm::kMbt;
  core::BatchMode batch_mode = core::BatchMode::kPhase2;
  core::PathPolicy path_policy = core::PathPolicy::kAdaptive;
  bool probe_memo = true;
  bool memo_persistent = true;
  u32 memo_ways = 2;
  usize shards = 0;
  bool steer_symmetric = false;
  std::string fault_plan_spec;

  u64 n = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--version") {
      std::cout << common::version_line("pclass_serve") << "\n";
      return 0;
    } else if (flag == "--rules" && i + 1 < argc) {
      rules_path = argv[++i];
    } else if (flag == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (flag == "--listen" && i + 1 < argc) {
      listen_spec = argv[++i];
    } else if (flag == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (flag == "--workers" && i + 1 < argc) {
      if (!parse_count(argv[++i], n) || n == 0 || n > 256) return usage();
      workers = static_cast<usize>(n);
    } else if (flag == "--batch" && i + 1 < argc) {
      if (!parse_count(argv[++i], n) || n == 0) return usage();
      batch = static_cast<usize>(n);
    } else if (flag == "--cache-depth" && i + 1 < argc) {
      if (!parse_count(argv[++i], n) || n > (u64{1} << 24)) return usage();
      cache_depth = static_cast<u32>(n);
    } else if (flag == "--stats-interval-ms" && i + 1 < argc) {
      if (!parse_count(argv[++i], n) || n > 3'600'000) return usage();
      stats_interval_ms = n;
    } else if (flag == "--ip-alg" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "mbt") ip_algorithm = core::IpAlgorithm::kMbt;
      else if (v == "bst") ip_algorithm = core::IpAlgorithm::kBst;
      else if (v == "rvh") ip_algorithm = core::IpAlgorithm::kRvh;
      else return usage();
    } else if (flag == "--batch-mode" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "scalar") batch_mode = core::BatchMode::kScalar;
      else if (v == "phase2") batch_mode = core::BatchMode::kPhase2;
      else return usage();
    } else if (flag == "--memo" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "persistent") {
        probe_memo = true;
        memo_persistent = true;
      } else if (v == "per-batch") {
        probe_memo = true;
        memo_persistent = false;
      } else if (v == "off") {
        probe_memo = false;
      } else {
        return usage();
      }
    } else if (flag == "--memo-ways" && i + 1 < argc) {
      if (!parse_count(argv[++i], n) || (n != 1 && n != 2)) return usage();
      memo_ways = static_cast<u32>(n);
    } else if (flag == "--shards" && i + 1 < argc) {
      // 0 = unsharded. Replica mode only: partition is finite-only
      // (its combiner consumes bounded capture streams) and the serve
      // loop never ends.
      if (!parse_count(argv[++i], n) || n > 256) return usage();
      shards = static_cast<usize>(n);
    } else if (flag == "--steer-symmetric") {
      steer_symmetric = true;
    } else if (flag == "--fault-plan" && i + 1 < argc) {
      fault_plan_spec = argv[++i];
    } else if (flag == "--path-policy" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "adaptive") path_policy = core::PathPolicy::kAdaptive;
      else if (v == "phase2") path_policy = core::PathPolicy::kForcePhase2;
      else if (v == "scalar-loop") {
        path_policy = core::PathPolicy::kForceScalarLoop;
      } else {
        return usage();
      }
    } else {
      return usage();
    }
  }
  if (rules_path.empty() || trace_path.empty()) return usage();

  try {
    const ruleset::RuleSet rules = load_rules(rules_path);
    const net::Trace trace = load_trace(trace_path);
    if (trace.empty()) throw Error("trace is empty; nothing to serve");
    std::cerr << common::version_line("pclass_serve") << "\n"
              << "loaded " << rules.size() << " rules, " << trace.size()
              << " headers\n";

    // Headroom over the installed set so socket-driven `rule add`s have
    // device memory to land in.
    core::ClassifierConfig cfg =
        core::ClassifierConfig::for_scale(rules.size() + 1024);
    cfg.combine_mode = core::CombineMode::kCrossProduct;
    cfg.ip_algorithm = ip_algorithm;
    cfg.batch_mode = batch_mode;
    cfg.batch_probe_memo = probe_memo;
    cfg.batch_memo_persistent = memo_persistent;
    cfg.batch_memo_ways = memo_ways;
    cfg.batch_path_policy = path_policy;

    dataplane::RuleProgramPublisher programs(cfg);
    programs.install_ruleset(rules);
    dataplane::TrafficPool pool =
        dataplane::TrafficPool::from_trace(trace, /*materialize=*/false);

    // Fault injection (chaos drills): the injector must outlive the
    // engine and the control server, both of which hold pointers in.
    std::unique_ptr<fault::FaultInjector> injector;
    if (!fault_plan_spec.empty()) {
      injector = std::make_unique<fault::FaultInjector>(
          fault::FaultPlan::parse(fault_plan_spec));
      programs.set_fault_hook(
          [inj = injector.get()] { inj->on_publisher_apply(); });
      std::cerr << "fault plan armed: " << injector->plan().to_string()
                << "\n";
    }

    dataplane::EngineConfig ecfg{.workers = workers,
                                 .batch_size = batch,
                                 .flow_cache_depth = cache_depth,
                                 .loop = true,
                                 .stats_interval_ms = stats_interval_ms,
                                 .shards = shards,
                                 .shard_mode = dataplane::ShardMode::kReplica,
                                 .steer_symmetric = steer_symmetric};
    // The daemon always runs supervised: workers that die restart with
    // bounded retries, stalls are detected, and a permanently failed
    // worker's shards move to survivors instead of wedging the loop.
    ecfg.supervisor.enabled = true;
    ecfg.fault_injector = injector.get();
    dataplane::Engine engine(ecfg, programs);
    workers = engine.config().workers;

    struct sigaction sa = {};
    sa.sa_handler = handle_signal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);

    engine.start(pool);

    control::ControlPlane::Options copts;
    copts.verify_trace = &trace;
    copts.request_shutdown = [] {
      g_stop.store(true, std::memory_order_relaxed);
    };
    control::ControlPlane cp(engine, programs, copts);
    control::ServerConfig scfg = parse_listen(listen_spec);
    if (injector) {
      scfg.drop_request_hook = [inj = injector.get()](u64 request_index) {
        return inj->should_drop_request(request_index);
      };
    }
    control::ControlServer server(std::move(scfg), &cp.registry(),
                                  cp.subscribe_hooks());
    server.start();

    std::cout << "READY endpoint=" << server.endpoint()
              << " pid=" << ::getpid() << " version=" << programs.version()
              << " rules=" << programs.acquire()->rule_count()
              << " workers=" << workers << " shards=" << shards << "\n"
              << std::flush;

    while (!g_stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    std::cerr << "pclass_serve: shutting down (drain -> report)\n";
    // Drain first (stop workers, final telemetry flush, settle the
    // visibility ledger) so the report carries complete totals; then
    // stop the server, which sends every live subscriber its terminal
    // record before closing. `write drain` earlier makes this a no-op.
    const dataplane::EngineReport rep = cp.drain();
    server.stop();

    if (!report_path.empty()) {
      std::ofstream os(report_path);
      if (!os) throw Error("cannot open " + report_path);
      write_report(os, rep, cp, server);
      std::cerr << "wrote " << report_path << "\n";
    }

    const control::SocketVisibility sv = cp.socket_visibility();
    std::cerr << "served " << server.requests_served() << " requests on "
              << server.connections_accepted() << " connections; "
              << cp.updates_accepted() << " socket updates ("
              << sv.samples << " visibility samples, cmd->all mean "
              << sv.cmd_to_all_mean_ns / 1e6 << " ms, max "
              << static_cast<double>(sv.cmd_to_all_max_ns) / 1e6
              << " ms)\n"
              << "processed " << rep.packets() << " packets ("
              << rep.aggregate_mpps() << " Mpps aggregate)\n";
    // Surface every worker death — healed incarnations and permanent
    // failures alike — then fail the run iff a worker ended permanently
    // failed (post-retry). A restart the supervisor healed is news, not
    // an error.
    for (const auto& d : rep.error_log) {
      std::cerr << "worker " << d.worker << " [restarts=" << d.restarts
                << (d.permanent ? ", permanent" : ", healed") << "]: "
                << d.message << "\n";
    }
    if (rep.worker_restarts > 0 || rep.stall_detections > 0 ||
        rep.shards_reassigned > 0) {
      std::cerr << "supervisor: restarts=" << rep.worker_restarts
                << " stalls=" << rep.stall_detections
                << " shards_reassigned=" << rep.shards_reassigned << "\n";
    }
    if (rep.workers_failed > 0) {
      std::cerr << "error: " << rep.workers_failed
                << " worker(s) ended permanently failed (post-retry)\n";
      return 1;
    }
    if (const std::string err = rep.first_error(); !err.empty()) {
      std::cerr << "error: worker failed: " << err << "\n";
      return 1;
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
