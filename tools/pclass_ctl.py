#!/usr/bin/env python3
"""Reference client for the pclass_serve control socket.

Speaks the line protocol documented in docs/CONTROL.md: requests are
single lines, responses are `<code> <message>` optionally followed by a
length-framed `DATA <nbytes>` payload (every successful `read`), and
`subscribe stats <ms>` switches the connection to NDJSON row streaming
until the next request line (whose execution is preceded by a terminal
record carrying push/drop counts).

Examples:
  pclass_ctl.py --tcp 127.0.0.1:9099 -c "read stats"
  pclass_ctl.py --unix /tmp/pclass.sock -c "write rule add 7001 10 \
10.0.0.0/8 * * 80 6 drop" -c "read metrics"
  pclass_ctl.py --tcp 127.0.0.1:9099 --subscribe-rows 5 \
      -c "subscribe stats 200" -c "read stats"
  pclass_ctl.py --tcp 127.0.0.1:9099 --payload-only -c "read metrics"

Exit status: 0 when every response was 2xx, 1 on a 4xx/5xx response or
protocol violation, 2 on usage/connection errors.
"""

import argparse
import json
import socket
import sys
import time


class ProtocolError(Exception):
    pass


class Client:
    def __init__(self, sock, payload_only=False, quiet=False):
        self.sock = sock
        self.rd = sock.makefile("rb")
        self.payload_only = payload_only
        self.quiet = quiet
        self.failures = 0

    def _readline(self):
        line = self.rd.readline()
        if not line:
            raise ProtocolError("connection closed by server")
        return line.decode("utf-8", "replace").rstrip("\n")

    def _read_exact(self, nbytes):
        buf = b""
        while len(buf) < nbytes:
            chunk = self.rd.read(nbytes - len(buf))
            if not chunk:
                raise ProtocolError("connection closed mid-payload")
            buf += chunk
        return buf

    def _emit(self, text):
        if not self.quiet:
            sys.stdout.write(text)

    def _read_status(self):
        """Read a status line, skipping any straggler NDJSON rows that a
        just-ended subscription pushed before our request was parsed."""
        while True:
            line = self._readline()
            if line.startswith("{"):  # late subscription row or terminal
                self._emit(line + "\n")
                continue
            parts = line.split(" ", 1)
            try:
                code = int(parts[0])
            except ValueError:
                raise ProtocolError(f"malformed status line: {line!r}")
            return code, parts[1] if len(parts) > 1 else ""

    def request(self, command, subscribe_rows=3):
        self.sock.sendall(command.encode("utf-8") + b"\n")
        code, message = self._read_status()
        if not self.payload_only:
            self._emit(f"{code} {message}\n")
        if code >= 400:
            self.failures += 1
            return code
        if command.split()[0] == "subscribe":
            self._stream_rows(subscribe_rows)
            return code
        if command.split()[0] == "read":
            frame = self._readline()
            if not frame.startswith("DATA "):
                raise ProtocolError(f"expected DATA frame, got {frame!r}")
            nbytes = int(frame.split(" ", 1)[1])
            payload = self._read_exact(nbytes)
            sys.stdout.write(payload.decode("utf-8", "replace"))
        return code

    def _stream_rows(self, max_rows):
        """Print NDJSON rows until max_rows arrived; the *next* request
        (sent by the caller) ends the stream with a terminal record,
        which _read_status skips past."""
        rows = 0
        while rows < max_rows:
            line = self._readline()
            self._emit(line + "\n")
            try:
                row = json.loads(line)
            except ValueError:
                raise ProtocolError(f"bad subscription row: {line!r}")
            if row.get("terminal"):
                return  # server ended the stream (drain/shutdown)
            rows += 1


def connect(args):
    deadline = time.monotonic() + args.wait
    while True:
        try:
            if args.unix:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.connect(args.unix)
            else:
                host, _, port = args.tcp.rpartition(":")
                sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                sock.connect((host or "127.0.0.1", int(port)))
            return sock
        except OSError as e:
            if time.monotonic() >= deadline:
                raise e
            time.sleep(0.1)


def main():
    ap = argparse.ArgumentParser(
        description="pclass_serve control-socket client")
    target = ap.add_mutually_exclusive_group(required=True)
    target.add_argument("--tcp", metavar="HOST:PORT",
                        help="TCP endpoint (HOST defaults to 127.0.0.1)")
    target.add_argument("--unix", metavar="PATH",
                        help="Unix domain socket path")
    ap.add_argument("-c", "--cmd", action="append", default=[],
                    metavar="LINE", help="request line (repeatable)")
    ap.add_argument("--wait", type=float, default=0.0, metavar="SECS",
                    help="retry the connect for up to SECS (default: 0)")
    ap.add_argument("--subscribe-rows", type=int, default=3, metavar="N",
                    help="rows to print per subscribe before moving on")
    ap.add_argument("--payload-only", action="store_true",
                    help="print payload bytes only (no status lines)")
    args = ap.parse_args()
    if not args.cmd:
        ap.error("at least one -c/--cmd is required")

    try:
        sock = connect(args)
    except OSError as e:
        print(f"pclass_ctl: connect failed: {e}", file=sys.stderr)
        return 2

    client = Client(sock, payload_only=args.payload_only,
                    quiet=args.payload_only)
    try:
        for command in args.cmd:
            client.request(command, subscribe_rows=args.subscribe_rows)
        client.request("quit")
    except ProtocolError as e:
        print(f"pclass_ctl: protocol error: {e}", file=sys.stderr)
        return 1
    finally:
        sock.close()
    return 1 if client.failures else 0


if __name__ == "__main__":
    sys.exit(main())
