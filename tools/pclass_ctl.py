#!/usr/bin/env python3
"""Reference client for the pclass_serve control socket.

Speaks the line protocol documented in docs/CONTROL.md: requests are
single lines, responses are `<code> <message>` optionally followed by a
length-framed `DATA <nbytes>` payload (every successful `read`), and
`subscribe stats <ms>` switches the connection to NDJSON row streaming
until the next request line (whose execution is preceded by a terminal
record carrying push/drop counts).

Robustness: every request runs under a per-request `--timeout`, and
transient failures — connect refused, the server dropping the
connection mid-request (e.g. during drain, or a `conndrop` fault-plan
event), resets, timeouts — are retried up to `--retries` times with
exponential backoff plus jitter, reconnecting between attempts. A
request that had already been sent is only retried when its verb is
idempotent (`read`/`ping`/`subscribe`); a `write` that dies after send
fails cleanly instead of risking a double-apply. A 503 (server
draining) produces a one-line explanation, not a traceback.

Examples:
  pclass_ctl.py --tcp 127.0.0.1:9099 -c "read stats"
  pclass_ctl.py --unix /tmp/pclass.sock -c "write rule add 7001 10 \
10.0.0.0/8 * * 80 6 drop" -c "read metrics"
  pclass_ctl.py --tcp 127.0.0.1:9099 --subscribe-rows 5 \
      -c "subscribe stats 200" -c "read stats"
  pclass_ctl.py --tcp 127.0.0.1:9099 --payload-only -c "read metrics"
  pclass_ctl.py --tcp 127.0.0.1:9099 --timeout 2 --retries 4 \
      -c "read stats"

Exit status: 0 when every response was 2xx, 1 on a 4xx/5xx response,
protocol violation or transient failure that exhausted its retries,
2 on usage/connection errors.
"""

import argparse
import json
import random
import socket
import sys
import time


class ProtocolError(Exception):
    """Unrecoverable protocol violation (malformed frame); not retried."""


class TransientError(Exception):
    """Connection-level failure worth retrying: the server dropped the
    connection, the request timed out, or the kernel reported a reset.
    `sent` is True when the request line had already left the socket, so
    retrying a non-idempotent command would risk a double-apply."""

    def __init__(self, message, sent=False):
        super().__init__(message)
        self.sent = sent


def idempotent(command):
    parts = command.split()
    return bool(parts) and parts[0] in ("read", "ping", "subscribe", "quit")


class Client:
    def __init__(self, sock, payload_only=False, quiet=False, timeout=0.0):
        self.sock = sock
        self.rd = sock.makefile("rb")
        self.payload_only = payload_only
        self.quiet = quiet
        self.timeout = timeout
        self.failures = 0

    def _readline(self):
        try:
            line = self.rd.readline()
        except socket.timeout:
            raise TransientError(
                f"request timed out after {self.timeout:g}s", sent=True)
        except OSError as e:
            raise TransientError(f"connection error: {e}", sent=True)
        if not line:
            raise TransientError(
                "connection closed by server (draining or crashed?)",
                sent=True)
        return line.decode("utf-8", "replace").rstrip("\n")

    def _read_exact(self, nbytes):
        buf = b""
        while len(buf) < nbytes:
            try:
                chunk = self.rd.read(nbytes - len(buf))
            except socket.timeout:
                raise TransientError(
                    f"request timed out after {self.timeout:g}s", sent=True)
            except OSError as e:
                raise TransientError(f"connection error: {e}", sent=True)
            if not chunk:
                raise TransientError("connection closed mid-payload",
                                     sent=True)
            buf += chunk
        return buf

    def _emit(self, text):
        if not self.quiet:
            sys.stdout.write(text)

    def _read_status(self):
        """Read a status line, skipping any straggler NDJSON rows that a
        just-ended subscription pushed before our request was parsed."""
        while True:
            line = self._readline()
            if line.startswith("{"):  # late subscription row or terminal
                self._emit(line + "\n")
                continue
            parts = line.split(" ", 1)
            try:
                code = int(parts[0])
            except ValueError:
                raise ProtocolError(f"malformed status line: {line!r}")
            return code, parts[1] if len(parts) > 1 else ""

    def request(self, command, subscribe_rows=3):
        try:
            self.sock.sendall(command.encode("utf-8") + b"\n")
        except socket.timeout:
            raise TransientError(
                f"request timed out after {self.timeout:g}s", sent=True)
        except OSError as e:
            raise TransientError(f"send failed: {e}", sent=False)
        code, message = self._read_status()
        if not self.payload_only:
            self._emit(f"{code} {message}\n")
        if code >= 400:
            self.failures += 1
            if code == 503:
                print(f"pclass_ctl: server unavailable (503 {message}): "
                      "it is draining or shutting down — retry once it "
                      "has restarted", file=sys.stderr)
            return code
        if command.split()[0] == "subscribe":
            self._stream_rows(subscribe_rows)
            return code
        if command.split()[0] == "read":
            frame = self._readline()
            if not frame.startswith("DATA "):
                raise ProtocolError(f"expected DATA frame, got {frame!r}")
            nbytes = int(frame.split(" ", 1)[1])
            payload = self._read_exact(nbytes)
            sys.stdout.write(payload.decode("utf-8", "replace"))
        return code

    def _stream_rows(self, max_rows):
        """Print NDJSON rows until max_rows arrived; the *next* request
        (sent by the caller) ends the stream with a terminal record,
        which _read_status skips past."""
        rows = 0
        while rows < max_rows:
            line = self._readline()
            self._emit(line + "\n")
            try:
                row = json.loads(line)
            except ValueError:
                raise ProtocolError(f"bad subscription row: {line!r}")
            if row.get("terminal"):
                return  # server ended the stream (drain/shutdown)
            rows += 1


def backoff_delay(base, attempt):
    """Exponential backoff with jitter: base * 2^attempt, capped at 2s,
    plus up to 50% random jitter so retry storms decorrelate."""
    delay = min(base * (2 ** min(attempt, 6)), 2.0)
    return delay + random.uniform(0, delay / 2)


def connect(args):
    """Connect with bounded retries (exponential backoff + jitter); the
    legacy --wait deadline extends the retry window for daemon startup
    races, polling until whichever of the two budgets lasts longer."""
    deadline = time.monotonic() + args.wait
    attempt = 0
    while True:
        try:
            if args.unix:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            else:
                sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            if args.timeout > 0:
                sock.settimeout(args.timeout)
            if args.unix:
                sock.connect(args.unix)
            else:
                host, _, port = args.tcp.rpartition(":")
                sock.connect((host or "127.0.0.1", int(port)))
            return sock
        except OSError as e:
            sock.close()
            now = time.monotonic()
            if attempt >= args.retries and now >= deadline:
                raise e
            delay = max(backoff_delay(args.backoff, attempt), 0.05)
            if now < deadline:
                delay = min(delay, max(deadline - now, 0.05))
            time.sleep(delay)
            attempt += 1


def run_commands(args):
    try:
        sock = connect(args)
    except OSError as e:
        print(f"pclass_ctl: connect failed: {e}", file=sys.stderr)
        return 2

    client = Client(sock, payload_only=args.payload_only,
                    quiet=args.payload_only, timeout=args.timeout)
    commands = list(args.cmd) + ["quit"]
    failures = 0
    retries_left = args.retries
    idx = 0
    while idx < len(commands):
        command = commands[idx]
        try:
            client.request(command, subscribe_rows=args.subscribe_rows)
            idx += 1
        except TransientError as e:
            sock.close()
            if command == "quit":
                break  # server already closed: goal achieved
            if e.sent and not idempotent(command):
                print(f"pclass_ctl: {e}; not retrying non-idempotent "
                      f"request {command!r}", file=sys.stderr)
                return 1
            if retries_left <= 0:
                print(f"pclass_ctl: {e} (retries exhausted)",
                      file=sys.stderr)
                return 1
            attempt = args.retries - retries_left
            retries_left -= 1
            delay = backoff_delay(args.backoff, attempt)
            print(f"pclass_ctl: {e}; retrying in {delay:.2f}s "
                  f"({retries_left + 1} attempt(s) left)", file=sys.stderr)
            time.sleep(delay)
            try:
                sock = connect(args)
            except OSError as ce:
                print(f"pclass_ctl: reconnect failed: {ce}",
                      file=sys.stderr)
                return 2
            failures += client.failures
            client = Client(sock, payload_only=args.payload_only,
                            quiet=args.payload_only, timeout=args.timeout)
        except ProtocolError as e:
            print(f"pclass_ctl: protocol error: {e}", file=sys.stderr)
            sock.close()
            return 1
    sock.close()
    return 1 if failures + client.failures else 0


def main():
    ap = argparse.ArgumentParser(
        description="pclass_serve control-socket client")
    target = ap.add_mutually_exclusive_group(required=True)
    target.add_argument("--tcp", metavar="HOST:PORT",
                        help="TCP endpoint (HOST defaults to 127.0.0.1)")
    target.add_argument("--unix", metavar="PATH",
                        help="Unix domain socket path")
    ap.add_argument("-c", "--cmd", action="append", default=[],
                    metavar="LINE", help="request line (repeatable)")
    ap.add_argument("--wait", type=float, default=0.0, metavar="SECS",
                    help="retry the connect for up to SECS (default: 0)")
    ap.add_argument("--timeout", type=float, default=10.0, metavar="SECS",
                    help="per-request socket timeout; 0 disables "
                    "(default: 10)")
    ap.add_argument("--retries", type=int, default=2, metavar="N",
                    help="max retries on connect/transient errors "
                    "(default: 2)")
    ap.add_argument("--backoff", type=float, default=0.2, metavar="SECS",
                    help="base retry backoff, doubled per attempt with "
                    "jitter (default: 0.2)")
    ap.add_argument("--subscribe-rows", type=int, default=3, metavar="N",
                    help="rows to print per subscribe before moving on")
    ap.add_argument("--payload-only", action="store_true",
                    help="print payload bytes only (no status lines)")
    args = ap.parse_args()
    if not args.cmd:
        ap.error("at least one -c/--cmd is required")
    return run_commands(args)


if __name__ == "__main__":
    sys.exit(main())
