/// \file pclass_scenario.cpp
/// Scenario runner CLI: drives the dataplane Engine over the workload
/// catalog (ACL/FW/IPC-shaped sets, Zipf locality, cache-thrash,
/// trie-depth and update-storm traffic) and emits one machine-readable
/// JSON report. Every scenario is oracle-verified against
/// baseline::LinearSearch; any mismatch, worker error or snapshot
/// monotonicity violation makes the exit code nonzero, which is what CI
/// keys on.
///
///   pclass_scenario [--list] [--scenario NAME]... [--smoke]
///                   [--workers N] [--cache-depth N] [--seed N]
///                   [--scale F] [--out FILE] [--parallel N]
///                   [--max-workers N]
///                   [--ip-alg mbt|bst|rvh]
///                   [--batch-mode scalar|phase2]
///                   [--memo persistent|per-batch] [--memo-ways 1|2]
///                   [--path-policy adaptive|phase2|scalar-loop]
///                   [--shards N] [--shard-mode replica|partition]
///                   [--steer-symmetric] [--fault-plan SPEC]
///                   [--save-workloads DIR] [--load-workloads DIR]
///                   [--stats-interval-ms N] [--trace-out FILE]
///                   [--metrics-out FILE]
///
/// --smoke shrinks every workload (~6x) for fast CI runs. The report
/// goes to stdout unless --out names a file.
///
/// Telemetry: --stats-interval-ms N runs a background sampler per
/// engine and embeds its delta series as the report's `timeseries`
/// array; --trace-out writes every batch span as chrome://tracing JSON
/// (one process per scenario, one track per worker — load it at
/// chrome://tracing or ui.perfetto.dev); --metrics-out writes a
/// Prometheus text-exposition dump of the per-scenario end-of-run
/// counters.
///
/// The catalog runs on a small thread pool (scenarios are independent;
/// the report keeps catalog order) — --parallel 1 restores sequential
/// runs, --parallel N sets the pool size, default is auto. Concurrent
/// scenarios draw engine worker threads from one shared WorkerBudget
/// capped at --max-workers (default: the hardware thread count), so a
/// parallel run never oversubscribes the host with scenarios x workers
/// threads. --memo-ways selects the probe memo's associativity (2 =
/// set-associative default, 1 = the direct-mapped A/B reference).
/// --ip-alg selects the IP lookup backend every scenario's device is
/// built with (mbt/bst trie family, rvh range-vector hash) — the
/// per-family win/loss axis CI sweeps over saved workloads.
///
/// --shards N runs every scenario's engine as N RSS-style shards, each
/// owning its classifier replica, flow cache and probe memo.
/// --shard-mode replica (default) steers the trace per-flow across full
/// ruleset replicas; partition deals the rules round-robin into
/// disjoint per-shard subsets and re-combines verdicts by (priority,
/// rule id) — finite scenarios only (the update-storm scenarios fall
/// back to unsharded under partition). --steer-symmetric makes both
/// directions of a flow land on the same shard.
///
/// --fault-plan SPEC overrides the chaos scenario's built-in seeded
/// fault plan (grammar: throw:w=W@S, stall:w=W@S:ms=D, pubfail:u=K,
/// conndrop:r=K, comma-separated; see docs/ROBUSTNESS.md). Other
/// scenarios ignore it.
///
/// --save-workloads writes each scenario's synthesized ruleset/trace as
/// versioned PCR1/PCT1 binaries; --load-workloads replays them instead
/// of re-synthesizing, so two runs (e.g. scalar vs phase2 batch mode,
/// persistent vs per-batch probe memo via --memo, or two PRs) measure
/// byte-identical workloads.
#include <array>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/build_info.hpp"
#include "common/parse.hpp"
#include "telemetry/export.hpp"
#include "workload/scenario.hpp"

using namespace pclass;

namespace {

int usage() {
  std::cerr << "usage: pclass_scenario [--version] [--list] "
               "[--scenario NAME]... "
               "[--smoke] [--workers N] [--cache-depth N] [--seed N] "
               "[--scale F] [--out FILE] [--parallel N] [--max-workers N] "
               "[--ip-alg mbt|bst|rvh] [--batch-mode scalar|phase2] "
               "[--memo persistent|per-batch] [--memo-ways 1|2] "
               "[--path-policy adaptive|phase2|scalar-loop] "
               "[--shards N] [--shard-mode replica|partition] "
               "[--steer-symmetric] [--fault-plan SPEC] "
               "[--save-workloads DIR] [--load-workloads DIR] "
               "[--stats-interval-ms N] [--trace-out FILE] "
               "[--metrics-out FILE]\n";
  return 2;
}

/// End-of-run counters of every scenario as Prometheus text exposition.
void write_metrics(std::ostream& os,
                   const std::vector<workload::ScenarioResult>& results) {
  telemetry::MetricsWriter m(os);
  using Label = telemetry::MetricsWriter::Label;
  const auto& build = common::build_info();
  {
    const std::array<Label, 3> ls = {Label{"version", build.version},
                                     Label{"git_sha", build.git_sha},
                                     Label{"build_type", build.build_type}};
    m.gauge("pclass_build_info",
            "Build metadata as labels; value is always 1.", ls, 1.0);
  }
  for (const auto& r : results) {
    const std::array<Label, 1> ls = {Label{"scenario", r.name}};
    m.counter("pclass_packets_total", "Packets processed", ls,
              static_cast<double>(r.packets_processed));
    m.counter("pclass_matched_total", "Packets matched by a rule", ls,
              static_cast<double>(r.matched));
    m.gauge("pclass_throughput_mpps", "End-of-run aggregate Mpps", ls,
            r.mpps);
    m.gauge("pclass_cache_hit_rate", "Flow-cache hit rate", ls,
            r.cache_hit_rate);
    m.gauge("pclass_lookup_cycles_p50", "Modelled lookup cycles, p50", ls,
            static_cast<double>(r.p50_cycles));
    m.gauge("pclass_lookup_cycles_p99", "Modelled lookup cycles, p99", ls,
            static_cast<double>(r.p99_cycles));
    m.counter("pclass_probe_memo_hits_total", "Probe-memo hits", ls,
              static_cast<double>(r.probe_memo_hits));
    m.counter("pclass_probe_memo_conflict_evictions_total",
              "Probe-memo conflict evictions", ls,
              static_cast<double>(r.probe_memo_conflict_evictions));
    m.counter("pclass_updates_applied_total", "Southbound updates applied",
              ls, static_cast<double>(r.updates_applied));
    m.counter("pclass_trace_events_dropped_total",
              "Trace-ring events lost to overwrite", ls,
              static_cast<double>(r.trace_events_dropped));
    m.gauge("pclass_update_visibility_mean_ns",
            "Mean publish->worker-visible latency", ls,
            r.update_visibility.mean_ns);
    m.gauge("pclass_update_visibility_max_ns",
            "Max publish->worker-visible latency", ls,
            static_cast<double>(r.update_visibility.max_ns));
    m.counter("pclass_oracle_mismatches_total",
              "Oracle verification mismatches", ls,
              static_cast<double>(r.oracle_mismatches));
    m.counter("pclass_worker_restarts_total",
              "Supervisor restarts of dead workers", ls,
              static_cast<double>(r.worker_restarts));
    m.counter("pclass_stall_detections_total",
              "Watchdog heartbeat-stall episodes", ls,
              static_cast<double>(r.stall_detections));
    m.counter("pclass_shards_reassigned_total",
              "Shards taken over from permanently failed workers", ls,
              static_cast<double>(r.shards_reassigned));
    m.counter("pclass_workers_failed_total",
              "Workers that ended permanently failed (post-retry)", ls,
              static_cast<double>(r.workers_failed));
    m.counter("pclass_shed_packets_total",
              "Offered packets never claimed (owner died, no survivor)",
              ls, static_cast<double>(r.shed_packets));
    m.counter("pclass_lost_packets_total",
              "Packets in flight inside a dead worker", ls,
              static_cast<double>(r.lost_packets));
  }
}

}  // namespace

int main(int argc, char** argv) {
  workload::ScenarioOptions opts;
  std::vector<std::string> wanted;
  std::string out_path;
  std::string trace_path;
  std::string metrics_path;
  bool list_only = false;

  u64 n = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--version") {
      std::cout << common::version_line("pclass_scenario") << "\n";
      return 0;
    } else if (flag == "--list") {
      list_only = true;
    } else if (flag == "--smoke") {
      opts.scale = 0.15;
    } else if (flag == "--scenario" && i + 1 < argc) {
      wanted.emplace_back(argv[++i]);
    } else if (flag == "--workers" && i + 1 < argc) {
      if (!parse_count(argv[++i], n) || n == 0 || n > 256) return usage();
      opts.workers = static_cast<usize>(n);
    } else if (flag == "--cache-depth" && i + 1 < argc) {
      if (!parse_count(argv[++i], n) || n > (u64{1} << 24)) return usage();
      opts.flow_cache_depth = static_cast<u32>(n);
    } else if (flag == "--seed" && i + 1 < argc) {
      if (!parse_count(argv[++i], n)) return usage();
      opts.seed = n;
    } else if (flag == "--scale" && i + 1 < argc) {
      try {
        opts.scale = std::stod(argv[++i]);
      } catch (const std::exception&) {
        return usage();
      }
      if (opts.scale <= 0 || opts.scale > 100) return usage();
    } else if (flag == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (flag == "--ip-alg" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "mbt") opts.ip_algorithm = core::IpAlgorithm::kMbt;
      else if (v == "bst") opts.ip_algorithm = core::IpAlgorithm::kBst;
      else if (v == "rvh") opts.ip_algorithm = core::IpAlgorithm::kRvh;
      else return usage();
    } else if (flag == "--batch-mode" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "scalar") opts.batch_mode = core::BatchMode::kScalar;
      else if (v == "phase2") opts.batch_mode = core::BatchMode::kPhase2;
      else return usage();
    } else if (flag == "--memo" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "persistent") opts.memo_persistent = true;
      else if (v == "per-batch") opts.memo_persistent = false;
      else return usage();
    } else if (flag == "--memo-ways" && i + 1 < argc) {
      if (!parse_count(argv[++i], n) || (n != 1 && n != 2)) return usage();
      opts.memo_ways = static_cast<u32>(n);
    } else if (flag == "--path-policy" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "adaptive") opts.path_policy = core::PathPolicy::kAdaptive;
      else if (v == "phase2") opts.path_policy = core::PathPolicy::kForcePhase2;
      else if (v == "scalar-loop") {
        opts.path_policy = core::PathPolicy::kForceScalarLoop;
      } else {
        return usage();
      }
    } else if (flag == "--shards" && i + 1 < argc) {
      // 0 = unsharded (the default geometry).
      if (!parse_count(argv[++i], n) || n > 256) return usage();
      opts.shards = static_cast<usize>(n);
    } else if (flag == "--shard-mode" && i + 1 < argc) {
      const auto mode = dataplane::parse_shard_mode(argv[++i]);
      if (!mode) return usage();
      opts.shard_mode = *mode;
    } else if (flag == "--steer-symmetric") {
      opts.steer_symmetric = true;
    } else if (flag == "--fault-plan" && i + 1 < argc) {
      opts.fault_plan = argv[++i];
    } else if (flag == "--parallel" && i + 1 < argc) {
      if (!parse_count(argv[++i], n) || n > 64) return usage();
      opts.parallel = static_cast<usize>(n);
    } else if (flag == "--max-workers" && i + 1 < argc) {
      // 0 = auto (documented): the runner sizes the budget itself.
      if (!parse_count(argv[++i], n) || n > 1024) return usage();
      opts.max_workers = static_cast<usize>(n);
    } else if (flag == "--save-workloads" && i + 1 < argc) {
      opts.save_workloads_dir = argv[++i];
    } else if (flag == "--load-workloads" && i + 1 < argc) {
      opts.load_workloads_dir = argv[++i];
    } else if (flag == "--stats-interval-ms" && i + 1 < argc) {
      if (!parse_count(argv[++i], n) || n > 3'600'000) return usage();
      opts.stats_interval_ms = n;
    } else if (flag == "--trace-out" && i + 1 < argc) {
      trace_path = argv[++i];
      opts.collect_trace = true;
    } else if (flag == "--metrics-out" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      return usage();
    }
  }

  if (list_only) {
    for (const auto& s : workload::ScenarioRunner::catalog()) {
      std::cout << s.name << "\t" << s.description << "\n";
    }
    return 0;
  }

  try {
    workload::ScenarioRunner runner(opts);
    const std::vector<workload::ScenarioResult> results =
        wanted.empty() ? runner.run_all() : runner.run_many(wanted);

    // Human-readable progress on stderr; the JSON report is the output.
    for (const auto& r : results) {
      std::cerr << (r.ok() ? "ok   " : "FAIL ") << r.name << ": "
                << r.packets_processed << " pkts, "
                << r.rules << " rules, p50/p99 " << r.p50_cycles << "/"
                << r.p99_cycles << " cyc, cache "
                << static_cast<int>(r.cache_hit_rate * 100) << "%, oracle "
                << (r.oracle_checked - r.oracle_mismatches) << "/"
                << r.oracle_checked;
      if (r.probe_memo_hits > 0) {
        std::cerr << ", memo " << r.probe_memo_hits << " (inval "
                  << r.probe_memo_invalidations << ", confl "
                  << r.probe_memo_conflict_evictions << ")";
      }
      if (r.updates_applied > 0) {
        std::cerr << ", " << r.updates_applied << " updates";
      }
      if (r.update_visibility.samples > 0) {
        std::cerr << ", upd-vis "
                  << static_cast<u64>(r.update_visibility.mean_ns) / 1000
                  << "us mean";
      }
      if (r.trace_events_dropped > 0) {
        std::cerr << ", trace-drop " << r.trace_events_dropped;
      }
      for (const auto& we : r.worker_errors) {
        std::cerr << " [" << we << "]";
      }
      if (!r.error.empty() && r.worker_errors.empty()) {
        std::cerr << " [" << r.error << "]";
      }
      std::cerr << "\n";
    }

    if (!trace_path.empty()) {
      std::vector<telemetry::TraceProcess> procs;
      procs.reserve(results.size());
      for (const auto& r : results) {
        procs.push_back({r.name, r.trace_events});
      }
      std::ofstream os(trace_path);
      if (!os) {
        std::cerr << "error: cannot open " << trace_path << "\n";
        return 1;
      }
      telemetry::write_chrome_trace(os, procs);
      std::cerr << "wrote " << trace_path << "\n";
    }
    if (!metrics_path.empty()) {
      std::ofstream os(metrics_path);
      if (!os) {
        std::cerr << "error: cannot open " << metrics_path << "\n";
        return 1;
      }
      write_metrics(os, results);
      std::cerr << "wrote " << metrics_path << "\n";
    }

    std::ostringstream report;
    workload::write_json_report(report, opts, results);
    if (out_path.empty()) {
      std::cout << report.str();
    } else {
      std::ofstream os(out_path);
      if (!os) {
        std::cerr << "error: cannot open " << out_path << "\n";
        return 1;
      }
      os << report.str();
      std::cerr << "wrote " << out_path << "\n";
    }

    if (!workload::all_ok(results)) {
      std::cerr << "FAIL: at least one scenario failed oracle/consistency "
                   "verification\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
