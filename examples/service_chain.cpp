/// \file service_chain.cpp
/// Network service function chaining — the motivating SDN use case of
/// the paper's introduction ("flows are directed through a series of
/// network services depending on the traffic or application type").
///
/// Three classification-backed switches implement a chain
///     ingress -> [DPI] -> [NAT] -> egress
/// where the classifier's group actions steer each traffic class to the
/// services it needs: web traffic through both services, VoIP past the
/// DPI (latency!), bulk traffic straight to egress.
///
///   $ ./service_chain
#include <iostream>
#include <map>

#include "common/random.hpp"
#include "common/table.hpp"
#include "ruleset/trace_gen.hpp"
#include "sdn/controller.hpp"
#include "sdn/switch_device.hpp"

using namespace pclass;

namespace {

// Group ids = next hop in the chain.
constexpr u16 kToDpi = 1;
constexpr u16 kToNat = 2;
constexpr u16 kToEgress = 3;

ruleset::Rule classify_rule(u32 id, ruleset::PortRange dport, u8 proto,
                            u16 next_hop) {
  ruleset::Rule r;
  r.id = RuleId{id};
  r.priority = id;
  r.dst_port = dport;
  r.proto = ruleset::ProtoMatch::exact(proto);
  r.action = ruleset::Action{sdn::ActionSpec::group(next_hop).encode()};
  return r;
}

}  // namespace

int main() {
  // One classifier-backed switch per chain position (constructed in
  // place: a SwitchDevice owns its hardware model and cannot be moved).
  std::map<std::string, sdn::SwitchDevice> chain;
  for (const char* name : {"ingress", "dpi", "nat"}) {
    chain.try_emplace(name, name, core::ClassifierConfig::for_scale(100));
  }

  // Per-switch chaining policy: the same traffic classes, but each
  // switch's group action points at ITS next hop in the chain.
  //   web (TCP 80/443)  -> DPI -> NAT -> egress
  //   voip (UDP 16384+) -> NAT -> egress (skips DPI: latency-critical)
  //   bulk (TCP 20/21)  -> egress directly
  auto program = [&](const std::string& sw, u16 web_hop, u16 voip_hop,
                     u16 bulk_hop) {
    auto push = [&](const ruleset::Rule& r) {
      sdn::FlowMod fm;
      fm.command = sdn::FlowMod::Command::kAdd;
      fm.cookie = r.id;
      fm.match = r;
      fm.action = sdn::ActionSpec::decode(r.action.token);
      chain.at(sw).handle(fm);
    };
    push(classify_rule(0, ruleset::PortRange::exact(80), net::kProtoTcp,
                       web_hop));
    push(classify_rule(1, ruleset::PortRange::exact(443), net::kProtoTcp,
                       web_hop));
    push(classify_rule(2, ruleset::PortRange::make(16384, 32767),
                       net::kProtoUdp, voip_hop));
    push(classify_rule(3, ruleset::PortRange::make(20, 21), net::kProtoTcp,
                       bulk_hop));
  };
  program("ingress", kToDpi, kToNat, kToEgress);
  program("dpi", kToNat, kToNat, kToEgress);
  program("nat", kToEgress, kToEgress, kToEgress);

  // Walk packets through the chain, following group actions.
  Rng rng(99);
  std::map<std::string, u64> path_count;
  for (int i = 0; i < 30000; ++i) {
    net::FiveTuple h;
    h.src_ip = static_cast<u32>(rng.next());
    h.dst_ip = static_cast<u32>(rng.next());
    h.src_port = static_cast<u16>(rng.between(1024, 65535));
    switch (rng.below(4)) {
      case 0: h.dst_port = 80; h.protocol = net::kProtoTcp; break;
      case 1: h.dst_port = 443; h.protocol = net::kProtoTcp; break;
      case 2:
        h.dst_port = static_cast<u16>(rng.between(16384, 32767));
        h.protocol = net::kProtoUdp;
        break;
      default: h.dst_port = 20; h.protocol = net::kProtoTcp; break;
    }

    std::string path = "ingress";
    std::string at = "ingress";
    // Follow the chain (at most 3 classification hops).
    for (int hop = 0; hop < 3; ++hop) {
      const auto res = chain.at(at).process_header(h, 64);
      if (!res.rule || res.action.kind != sdn::ActionSpec::Kind::kGroup) {
        path += " -> drop";
        break;
      }
      if (res.action.arg == kToDpi) at = "dpi";
      else if (res.action.arg == kToNat) at = "nat";
      else { path += " -> egress"; break; }
      path += " -> " + at;
    }
    ++path_count[path];
  }

  std::cout << "service-chain paths over 30000 packets:\n";
  TextTable t({"path", "packets"});
  for (const auto& [path, n] : path_count) {
    t.add_row({path, std::to_string(n)});
  }
  t.print(std::cout);

  std::cout << "\nper-service lookup totals:\n";
  for (const auto& [name, sw] : chain) {
    std::cout << "  " << name << ": " << sw.stats().packets_in
              << " packets classified, " << sw.stats().packets_matched
              << " matched\n";
  }
  return 0;
}
