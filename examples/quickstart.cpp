/// \file quickstart.cpp
/// Minimal end-to-end use of the public API: configure a classifier,
/// install a handful of rules (Fig. 4 update path), classify packets
/// (Fig. 3 lookup path) and read the measured costs.
///
///   $ ./quickstart
#include <iostream>

#include "core/classifier.hpp"
#include "core/cycle_model.hpp"
#include "net/packet.hpp"

using namespace pclass;

int main() {
  // 1. A classifier sized for a small table, using the paper's fast
  //    configuration: multi-bit tries on the IP segments.
  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(100);
  cfg.ip_algorithm = core::IpAlgorithm::kMbt;
  cfg.combine_mode = core::CombineMode::kCrossProduct;  // exact mode
  core::ConfigurableClassifier clf(cfg);

  // 2. Three rules, highest priority first (ACL order).
  ruleset::Rule block_telnet;
  block_telnet.id = RuleId{0};
  block_telnet.priority = 0;
  block_telnet.dst_port = ruleset::PortRange::exact(23);
  block_telnet.proto = ruleset::ProtoMatch::exact(net::kProtoTcp);
  block_telnet.action = ruleset::Action{0};  // drop

  ruleset::Rule web_to_dc;
  web_to_dc.id = RuleId{1};
  web_to_dc.priority = 1;
  web_to_dc.dst_ip = ruleset::IpPrefix::make(ipv4(10, 20, 0, 0), 16);
  web_to_dc.dst_port = ruleset::PortRange::exact(443);
  web_to_dc.proto = ruleset::ProtoMatch::exact(net::kProtoTcp);
  web_to_dc.action = ruleset::Action{7};  // forward to port 7

  ruleset::Rule catch_all_udp;
  catch_all_udp.id = RuleId{2};
  catch_all_udp.priority = 2;
  catch_all_udp.proto = ruleset::ProtoMatch::exact(net::kProtoUdp);
  catch_all_udp.action = ruleset::Action{1};

  for (const auto& r : {block_telnet, web_to_dc, catch_all_udp}) {
    const hw::UpdateStats cost = clf.add_rule(r);
    std::cout << "installed rule " << r.id.value << " in " << cost.cycles
              << " bus cycles (" << cost.memory_writes << " memory words)\n";
  }

  // 3. Classify headers — both pre-parsed tuples and raw packet bytes.
  const net::FiveTuple flows[] = {
      {ipv4(192, 168, 1, 5), ipv4(10, 20, 3, 4), 40000, 443, net::kProtoTcp},
      {ipv4(192, 168, 1, 5), ipv4(10, 99, 3, 4), 40000, 23, net::kProtoTcp},
      {ipv4(8, 8, 8, 8), ipv4(1, 1, 1, 1), 53, 53, net::kProtoUdp},
      {ipv4(8, 8, 8, 8), ipv4(1, 1, 1, 1), 53, 53, 47},  // GRE: no rule
  };
  for (const net::FiveTuple& f : flows) {
    const auto pkt = net::make_packet(f, 64);
    const core::ClassifyResult res = clf.classify_packet(pkt.bytes);
    std::cout << net::to_string(f) << "\n  -> ";
    if (res.match) {
      std::cout << "rule " << res.match->rule.value << " (action "
                << res.match->action << ")";
    } else {
      std::cout << "table miss";
    }
    std::cout << " in " << res.cycles << " cycles, "
              << res.memory_accesses << " memory accesses\n";
  }

  // 4. What would this sustain at the paper's clock?
  const core::ThroughputModel rate{cfg.fmax_mhz};
  const auto pipe = clf.lookup_pipeline();
  const double cpp = pipe.run(1'000'000).cycles_per_packet;
  std::cout << "\npipelined throughput: "
            << rate.mega_lookups_per_sec(cpp) << " Mlookup/s = "
            << rate.gbps(cpp, 40) << " Gbps at 40-byte packets\n";
  return 0;
}
