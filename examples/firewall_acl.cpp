/// \file firewall_acl.cpp
/// A realistic firewall scenario: load a ClassBench-style ACL (the
/// paper's acl1 workload), push it into the hardware model, replay a
/// skewed traffic trace, and report the classification statistics a
/// network operator would look at — plus the device-level measurements
/// the paper's evaluation is built on.
///
///   $ ./firewall_acl [nominal_size=1000]
#include <iostream>

#include "baseline/linear_search.hpp"
#include "common/table.hpp"
#include "core/classifier.hpp"
#include "core/cycle_model.hpp"
#include "ruleset/generator.hpp"
#include "ruleset/stats.hpp"
#include "ruleset/trace_gen.hpp"
#include "sdn/controller.hpp"
#include "sdn/switch_device.hpp"

using namespace pclass;

int main(int argc, char** argv) {
  const usize nominal = argc > 1 ? std::stoul(argv[1]) : 1000;

  // The acl1-like filter set (Tables II/III calibration).
  const ruleset::RuleSet acl =
      ruleset::make_classbench_like(ruleset::FilterType::kAcl, nominal);
  const auto stats = ruleset::RuleSetStats::analyze(acl);
  std::cout << "filter set " << acl.name() << ": " << acl.size()
            << " rules\n  unique fields: src_ip=" << stats.unique_src_ip
            << " dst_ip=" << stats.unique_dst_ip
            << " src_port=" << stats.unique_src_port
            << " dst_port=" << stats.unique_dst_port
            << " proto=" << stats.unique_protocol << "\n"
            << "  label-method field storage saving: "
            << TextTable::num(100.0 * stats.unique_only_saving(), 1)
            << " %\n\n";

  // Switch + controller; exact combination mode for a firewall (a wrong
  // verdict is a security hole).
  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(acl.size());
  cfg.combine_mode = core::CombineMode::kCrossProduct;
  sdn::SwitchDevice fw("firewall0", cfg);
  sdn::Controller ctl("controller0");
  ctl.attach(fw);
  ctl.install_ruleset(acl);
  std::cout << "installed " << fw.flow_count() << " flows in "
            << ctl.stats().update_cycles_total << " update-bus cycles ("
            << TextTable::num(static_cast<double>(
                                  ctl.stats().update_cycles_total) /
                                  static_cast<double>(acl.size()),
                              1)
            << " cycles/rule bulk)\n\n";

  // Replay a skewed trace (heavy hitters first, 10% scan noise).
  ruleset::TraceGenerator tg(acl, {.headers = 20000,
                                   .rule_skew = 1.0,
                                   .random_fraction = 0.10,
                                   .seed = 7});
  const net::Trace trace = tg.generate();
  hw::CycleAggregate agg;
  for (const auto& e : trace) {
    const auto res = fw.process_header(e.header, 64);
    hw::CycleRecorder rec;
    rec.charge(res.lookup_cycles, 0);
    agg.add(rec);
  }

  const auto& s = fw.stats();
  std::cout << "traffic:   " << s.packets_in << " packets, "
            << s.packets_matched << " matched, " << s.packets_dropped
            << " dropped (miss or deny)\n";
  std::cout << "lookup:    " << TextTable::num(agg.mean_cycles(), 2)
            << " cycles/packet mean, " << agg.max_cycles() << " worst\n";

  // Top-3 hottest flows, from the flow-table counters.
  struct Hot {
    RuleId id;
    u64 packets;
  };
  std::vector<Hot> hot;
  for (const auto& r : acl) {
    if (const auto fs = fw.flow_stats(r.id); fs && fs->packets > 0) {
      hot.push_back({r.id, fs->packets});
    }
  }
  std::sort(hot.begin(), hot.end(),
            [](const Hot& a, const Hot& b) { return a.packets > b.packets; });
  std::cout << "hot flows: ";
  for (usize i = 0; i < std::min<usize>(3, hot.size()); ++i) {
    std::cout << "rule" << hot[i].id.value << "=" << hot[i].packets << "pkt ";
  }
  std::cout << "\n\n";

  // Device-level view (what the paper's Tables V/VI report).
  const auto mem = fw.classifier().memory_report();
  std::cout << "device:    " << mem.total_used_bits / 1024 << " Kbit live / "
            << mem.total_capacity_bits / 1024 << " Kbit allocated, "
            << mem.register_bits << " register bits\n";
  const core::ThroughputModel rate{cfg.fmax_mhz};
  const double cpp =
      fw.classifier().lookup_pipeline().run(1'000'000).cycles_per_packet;
  std::cout << "line rate: " << TextTable::num(rate.gbps(cpp, 40), 2)
            << " Gbps @40B (" << to_string(fw.classifier().ip_algorithm())
            << " configuration)\n";

  // Sanity: the device agrees with a linear-search oracle.
  baseline::LinearSearch oracle(acl);
  usize mismatches = 0;
  for (usize i = 0; i < 2000; ++i) {
    const auto& h = trace[i].header;
    const auto got = fw.classifier().classify(h);
    const auto* want = oracle.classify(h, nullptr);
    const bool ok = want == nullptr ? !got.match.has_value()
                                    : got.match && got.match->rule == want->id;
    if (!ok) ++mismatches;
  }
  std::cout << "verify:    " << (2000 - mismatches)
            << "/2000 headers agree with the linear-search oracle\n";
  return mismatches == 0 ? 0 : 1;
}
