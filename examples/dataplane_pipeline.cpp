/// \file dataplane_pipeline.cpp
/// The dataplane runtime end to end: an SDN controller programs a
/// RuleProgramPublisher (lock-free rule snapshots), a multi-worker
/// Engine streams batched traffic through the element pipeline
///
///   PacketSource -> Parser -> FlowCache -> Classifier -> ActionSink
///
/// and a live rule update lands mid-run without stalling the workers.
///
///   $ ./example_dataplane_pipeline
#include <iostream>
#include <thread>

#include "dataplane/engine.hpp"
#include "ruleset/generator.hpp"
#include "ruleset/trace_gen.hpp"
#include "sdn/controller.hpp"

using namespace pclass;

int main() {
  // 1. Controller side: a publisher instead of a bare switch. Every
  //    southbound message becomes an immutable snapshot swap.
  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(1000);
  cfg.combine_mode = core::CombineMode::kCrossProduct;  // exact mode
  dataplane::RuleProgramPublisher programs(cfg);
  sdn::Controller controller("ctrl-0");
  controller.attach(programs);

  auto rules = ruleset::make_classbench_like(ruleset::FilterType::kAcl, 1000);
  controller.install_ruleset(rules);
  std::cout << "installed " << programs.acquire()->rule_count()
            << " rules -> snapshot version " << programs.version() << "\n";

  // 2. Data plane: 20k trace headers, 4 workers, batches of 32, a
  //    1024-line exact-match flow cache per worker.
  ruleset::TraceGenerator tg(rules, {.headers = 20'000, .seed = 42});
  dataplane::TrafficPool pool =
      dataplane::TrafficPool::from_trace(tg.generate(), false);

  dataplane::Engine engine(
      {.workers = 4, .batch_size = 32, .flow_cache_depth = 1024, .loop = true},
      programs);
  engine.start(pool);

  // 3. Live update mid-run: drop all GRE traffic, highest priority.
  //    Workers keep classifying against the old snapshot until the new
  //    one is published — no locks, no stall.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ruleset::Rule drop_gre;
  drop_gre.id = RuleId{65'000};
  drop_gre.priority = 0;
  drop_gre.proto = ruleset::ProtoMatch::exact(47);
  controller.install(drop_gre, sdn::ActionSpec::drop());
  std::cout << "live update applied -> snapshot version "
            << programs.version() << "\n";
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // 4. Stop and read the per-worker measurements.
  const dataplane::EngineReport rep = engine.stop();
  std::cout << "\nworker  packets   matched   cache-hit%  p50cyc  p99cyc  "
               "versions\n";
  for (const auto& w : rep.workers) {
    std::cout << "  " << w.worker << "     " << w.packets << "   "
              << w.matched << "   "
              << static_cast<int>(w.cache_hit_rate() * 100) << "%        "
              << w.latency.percentile(50) << "      "
              << w.latency.percentile(99) << "     [" << w.min_version
              << ", " << w.max_version << "]"
              << (w.version_monotonic ? "" : "  NON-MONOTONIC!") << "\n";
  }
  std::cout << "\naggregate: " << rep.packets() << " packets in "
            << rep.wall_seconds << "s = " << rep.aggregate_mpps()
            << " Mpps across " << rep.workers.size() << " workers\n";
  std::cout << "controller sent " << controller.stats().flow_mods_sent
            << " flow-mods; publisher swapped "
            << programs.stats().publishes << " snapshots\n";
  return 0;
}
