/// \file sdn_flow_programming.cpp
/// The paper's SDN programmability story (§III.A): a controller manages
/// two switches, picks the lookup algorithm per application requirement
/// (fast MBT for a real-time videoconferencing service, compact BST when
/// the tenant's table outgrows it), and performs live incremental
/// updates, reporting the measured per-FlowMod cost.
///
///   $ ./sdn_flow_programming
#include <iostream>

#include "common/table.hpp"
#include "ruleset/generator.hpp"
#include "ruleset/trace_gen.hpp"
#include "sdn/controller.hpp"
#include "sdn/switch_device.hpp"

using namespace pclass;

namespace {

void show(const char* phase, const sdn::SwitchDevice& sw) {
  const auto& clf = sw.classifier();
  std::cout << "  [" << sw.name() << "] " << phase << ": "
            << sw.flow_count() << " flows, IP algorithm "
            << to_string(clf.ip_algorithm()) << ", update bus total "
            << clf.update_stats().cycles << " cycles\n";
}

}  // namespace

int main() {
  sdn::SwitchDevice edge("edge0",
                         core::ClassifierConfig::for_scale(5000));
  sdn::SwitchDevice core_sw("core0",
                            core::ClassifierConfig::for_scale(5000));
  sdn::Controller ctl("controller0");
  ctl.attach(edge);
  ctl.attach(core_sw);

  // Phase 1 — a real-time videoconferencing application: the controller
  // selects the fast MBT configuration (§III.A's example) and installs
  // media-session pinning rules one by one as sessions arrive.
  const usize mbt_capacity = 8000;  // Table VI MBT working point
  ctl.configure({.realtime = true, .expected_rules = 500}, mbt_capacity);
  show("after realtime config", edge);

  // Sessions share the RTP port range and are pinned per destination
  // host — unique field values stay within the 7-bit port label budget
  // no matter how many sessions arrive (the label method at work).
  u64 cycles_per_session = 0;
  for (u16 s = 0; s < 100; ++s) {
    ruleset::Rule r;
    r.id = RuleId{s};
    r.priority = s;
    r.src_ip = ruleset::IpPrefix::make(ipv4(172, 16, 0, 0), 12);
    r.dst_ip = ruleset::IpPrefix::make(
        ipv4(203, 0, static_cast<u8>(s / 4), static_cast<u8>(s % 256)), 32);
    r.dst_port = ruleset::PortRange::make(16384, 32767);  // RTP range
    r.proto = ruleset::ProtoMatch::exact(net::kProtoUdp);
    ctl.install(r, sdn::ActionSpec::output(static_cast<u16>(1 + s % 4)));
  }
  cycles_per_session = ctl.stats().update_cycles_total;
  std::cout << "  100 media sessions pinned; mean FlowMod cost "
            << TextTable::num(static_cast<double>(cycles_per_session) /
                                  (100.0 * 2 /*switches*/),
                              1)
            << " bus cycles/switch\n";
  show("after session setup", edge);

  // A media packet follows the pinned path on both switches.
  const net::FiveTuple rtp{ipv4(172, 16, 9, 9), ipv4(203, 0, 5, 21), 9000,
                           20000, net::kProtoUdp};
  std::cout << "  RTP " << net::to_string(rtp) << " -> edge port "
            << edge.process_header(rtp, 1200).action.arg << ", core port "
            << core_sw.process_header(rtp, 1200).action.arg << "\n\n";

  // Phase 2 — a tenant pushes a 5K-rule policy: beyond the MBT capacity
  // budget, so the controller re-configures to the compact BST and bulk
  // loads (IPalg_s flip + Fig. 5 shared-memory re-binding happen inside).
  const ruleset::RuleSet policy =
      ruleset::make_classbench_like(ruleset::FilterType::kIpc, 5000);
  ctl.configure({.realtime = false, .expected_rules = 12000},
                mbt_capacity);
  show("after capacity reconfig", edge);

  // Sessions from phase 1 still forward after the algorithm switch.
  std::cout << "  RTP after reconfig -> edge port "
            << edge.process_header(rtp, 1200).action.arg << "\n";

  u64 before = ctl.stats().update_cycles_total;
  // Offset ids so tenant rules do not collide with the session rules.
  for (const auto& r : policy) {
    ruleset::Rule copy = r;
    copy.id = RuleId{1000 + r.id.value};
    copy.priority = 1000 + r.priority;
    ctl.install(copy, sdn::ActionSpec::group(static_cast<u16>(
                          r.action.token % 32)));
  }
  std::cout << "  5K-rule tenant policy installed, "
            << (ctl.stats().update_cycles_total - before) / 2
            << " bus cycles per switch\n";
  show("after tenant load", edge);

  // Phase 3 — flow teardown: delete the media sessions incrementally.
  before = ctl.stats().update_cycles_total;
  for (u16 s = 0; s < 100; ++s) {
    ctl.remove(RuleId{s});
  }
  std::cout << "  teardown of 100 sessions cost "
            << (ctl.stats().update_cycles_total - before) / 2
            << " bus cycles per switch\n";
  show("after teardown", edge);

  std::cout << "\ncontroller totals: " << ctl.stats().flow_mods_sent
            << " FlowMods, " << ctl.stats().config_mods_sent
            << " ConfigMods, " << ctl.stats().update_cycles_total
            << " update-bus cycles across the fabric\n";
  return 0;
}
